// Command dcaload is the load-test harness for dcaserve: it drives the
// service at saturation with a configurable mix of traffic shapes and
// reports throughput, latency percentiles and shed-load (429) rates, both
// overall and per shape. The shapes cover the service's three cost
// regimes:
//
//   - warm:  POST /v1/jobs with one fixed cell — after the first request
//     every hit is a pure content-addressed cache read.
//   - cold:  POST /v1/jobs with a distinct cell per request (the warmup
//     window varies) — every request simulates, saturating the
//     admission queue and simulation semaphore.
//   - queue: POST /v1/queue with a distinct cell per request — cheap
//     enqueues that exercise the asynchronous path and its dedup.
//
// After the run it scrapes GET /metrics and embeds the server-side
// counters next to the client-side numbers, so a run's report correlates
// both views of the same traffic. With -out it writes the full report as
// JSON (the BENCH_load.json trajectory record); it always prints a
// human-readable summary.
//
// Usage:
//
//	dcaload -server http://localhost:8080 -d 10s -c 32
//	dcaload -server http://localhost:8080 -warm 1 -cold 0 -queue 0   # pure cache-hit load
//	dcaload -server http://localhost:8080 -out BENCH_load.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// shape names, in report order.
var shapeNames = []string{"warm", "cold", "queue"}

// sample is one completed request.
type sample struct {
	shape  string
	status int
	dur    time.Duration
}

// latencySummary is a distribution over one shape (or all traffic).
type latencySummary struct {
	Requests   int     `json:"requests"`
	OK         int     `json:"ok"`
	Throttled  int     `json:"throttled"` // HTTP 429
	Errors     int     `json:"errors"`    // anything else non-2xx, or transport failures
	Throughput float64 `json:"throughput_rps"`
	// ThrottledRate is Throttled/Requests — the acceptance signal that the
	// rate limiter sheds load instead of queueing it.
	ThrottledRate float64 `json:"throttled_rate"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	MaxMS         float64 `json:"max_ms"`
}

// report is the BENCH_load.json record.
type report struct {
	Benchmark   string                    `json:"benchmark"`
	Date        string                    `json:"date"`
	Description string                    `json:"description"`
	Environment map[string]any            `json:"environment"`
	Config      runConfig                 `json:"config"`
	Total       latencySummary            `json:"total"`
	PerShape    map[string]latencySummary `json:"per_shape"`
	// ServerMetrics are selected dcaserve_* counters scraped from
	// GET /metrics after the run — the server-side view of the same
	// traffic (hit/miss split, throttle counts, queue churn).
	ServerMetrics map[string]float64 `json:"server_metrics,omitempty"`
}

// runConfig records how the load was generated.
type runConfig struct {
	Server      string  `json:"server"`
	Concurrency int     `json:"concurrency"`
	DurationMS  int64   `json:"duration_ms"`
	WarmWeight  float64 `json:"warm_weight"`
	ColdWeight  float64 `json:"cold_weight"`
	QueueWeight float64 `json:"queue_weight"`
	Measure     uint64  `json:"measure"`
	ClientID    string  `json:"client_id"`
}

func main() {
	var (
		server  = flag.String("server", "http://localhost:8080", "dcaserve base URL")
		conc    = flag.Int("c", 4*runtime.GOMAXPROCS(0), "concurrent client connections")
		dur     = flag.Duration("d", 10*time.Second, "load duration")
		warm    = flag.Float64("warm", 0.5, "weight of cache-hit traffic")
		cold    = flag.Float64("cold", 0.3, "weight of distinct-cell simulation traffic")
		queueW  = flag.Float64("queue", 0.2, "weight of asynchronous enqueue traffic")
		measure = flag.Uint64("measure", 1000, "measure window per generated cell (small = request-rate bound)")
		id      = flag.String("id", "dcaload", "X-Client-ID sent with every request")
		out     = flag.String("out", "", "write the JSON report here (e.g. BENCH_load.json)")
	)
	flag.Parse()
	if *warm+*cold+*queueW <= 0 {
		fatal(fmt.Errorf("traffic weights sum to zero"))
	}

	client := &http.Client{Timeout: 60 * time.Second}
	if err := waitHealthy(client, *server, 10*time.Second); err != nil {
		fatal(err)
	}

	cfg := runConfig{
		Server: *server, Concurrency: *conc, DurationMS: dur.Milliseconds(),
		WarmWeight: *warm, ColdWeight: *cold, QueueWeight: *queueW,
		Measure: *measure, ClientID: *id,
	}
	fmt.Printf("dcaload: %d clients against %s for %s (warm %.0f%% / cold %.0f%% / queue %.0f%%)\n",
		*conc, *server, *dur,
		100**warm/(*warm+*cold+*queueW),
		100**cold/(*warm+*cold+*queueW),
		100**queueW/(*warm+*cold+*queueW))

	samples, elapsed := drive(client, cfg, *dur)
	rep := summarize(cfg, samples, elapsed)
	rep.ServerMetrics = scrapeMetrics(client, *server)
	printSummary(rep)

	if *out != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("dcaload: report written to %s\n", *out)
	}
}

// drive runs the client fleet and collects every sample.
func drive(client *http.Client, cfg runConfig, dur time.Duration) ([]sample, time.Duration) {
	var (
		mu      sync.Mutex
		samples []sample
		coldSeq atomic.Uint64
		wg      sync.WaitGroup
	)
	warmBody := specBody("modulo", 100, cfg.Measure)
	started := time.Now()
	deadline := started.Add(dur)
	wg.Add(cfg.Concurrency)
	for i := 0; i < cfg.Concurrency; i++ {
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(time.Now().UnixNano() + int64(worker)))
			for time.Now().Before(deadline) {
				shape, path, body := nextRequest(rng, cfg, warmBody, &coldSeq)
				s := issue(client, cfg, path, body)
				s.shape = shape
				mu.Lock()
				samples = append(samples, s)
				mu.Unlock()
				if s.status == http.StatusTooManyRequests {
					// Shed load means back off a beat; hammering a closed
					// door would just measure the door.
					time.Sleep(time.Duration(1+rng.Intn(5)) * time.Millisecond)
				}
			}
		}(i)
	}
	wg.Wait()
	return samples, time.Since(started)
}

// nextRequest picks a traffic shape by weight and builds its request.
func nextRequest(rng *rand.Rand, cfg runConfig, warmBody []byte, coldSeq *atomic.Uint64) (shape, path string, body []byte) {
	total := cfg.WarmWeight + cfg.ColdWeight + cfg.QueueWeight
	switch p := rng.Float64() * total; {
	case p < cfg.WarmWeight:
		return "warm", "/v1/jobs", warmBody
	case p < cfg.WarmWeight+cfg.ColdWeight:
		// A distinct warmup window per request gives every cell its own
		// content digest: no cache hit, no coalescing — a full simulation.
		n := coldSeq.Add(1)
		return "cold", "/v1/jobs", specBody("modulo", 1000+n, cfg.Measure)
	default:
		n := coldSeq.Add(1)
		spec := specBody("fifo", 1000+n, cfg.Measure)
		return "queue", "/v1/queue", []byte(`{"spec":` + string(spec) + `}`)
	}
}

// specBody builds one job spec. The scheme stays fixed; warmup varies the
// digest.
func specBody(scheme string, warmup, measure uint64) []byte {
	return []byte(fmt.Sprintf(`{"scheme":%q,"benchmark":"go","warmup":%d,"measure":%d}`,
		scheme, warmup, measure))
}

// issue sends one POST and classifies the outcome.
func issue(client *http.Client, cfg runConfig, path string, body []byte) sample {
	req, err := http.NewRequest(http.MethodPost, cfg.Server+path, bytes.NewReader(body))
	if err != nil {
		return sample{status: 0}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-ID", cfg.ClientID)
	start := time.Now()
	resp, err := client.Do(req)
	dur := time.Since(start)
	if err != nil {
		return sample{status: 0, dur: dur}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return sample{status: resp.StatusCode, dur: dur}
}

// summarize reduces the samples to the report's distributions.
func summarize(cfg runConfig, samples []sample, elapsed time.Duration) *report {
	perShape := make(map[string][]sample, len(shapeNames))
	for _, s := range samples {
		perShape[s.shape] = append(perShape[s.shape], s)
	}
	rep := &report{
		Benchmark: "dcaload",
		Date:      time.Now().UTC().Format("2006-01-02"),
		Description: "dcaserve under mixed saturation load: warm = repeated cell (cache hits), " +
			"cold = distinct cells (full simulations through admission control), queue = async enqueues. " +
			"Latencies are client-observed HTTP round trips; throttled counts HTTP 429 from the rate " +
			"limiter and admission queue. Regenerate with ci/load_smoke.sh or " +
			"`dcaload -server ... -out BENCH_load.json` against a saturated server.",
		Environment: map[string]any{
			"goos":    runtime.GOOS,
			"goarch":  runtime.GOARCH,
			"num_cpu": runtime.NumCPU(),
		},
		Config:   cfg,
		Total:    reduce(samples, elapsed),
		PerShape: make(map[string]latencySummary, len(shapeNames)),
	}
	for _, name := range shapeNames {
		if ss := perShape[name]; len(ss) > 0 {
			rep.PerShape[name] = reduce(ss, elapsed)
		}
	}
	return rep
}

// reduce computes one latencySummary.
func reduce(samples []sample, elapsed time.Duration) latencySummary {
	sum := latencySummary{Requests: len(samples)}
	if len(samples) == 0 {
		return sum
	}
	durs := make([]float64, len(samples))
	for i, s := range samples {
		durs[i] = float64(s.dur.Microseconds()) / 1e3
		switch {
		case s.status >= 200 && s.status <= 299:
			sum.OK++
		case s.status == http.StatusTooManyRequests:
			sum.Throttled++
		default:
			sum.Errors++
		}
	}
	sort.Float64s(durs)
	sum.Throughput = float64(len(samples)) / elapsed.Seconds()
	sum.ThrottledRate = float64(sum.Throttled) / float64(len(samples))
	sum.P50MS = percentile(durs, 50)
	sum.P95MS = percentile(durs, 95)
	sum.P99MS = percentile(durs, 99)
	sum.MaxMS = durs[len(durs)-1]
	return sum
}

// percentile reads the p-th percentile (nearest-rank) from sorted values.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p / 100 * float64(len(sorted)))
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// scrapeMetrics pulls the dcaserve_* families from GET /metrics — the
// server-side counters this run moved. Parse failures degrade to an
// absent map, never a failed run: the load numbers stand on their own.
func scrapeMetrics(client *http.Client, server string) map[string]float64 {
	resp, err := client.Get(server + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") || !strings.HasPrefix(line, "dcaserve_") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok || strings.Contains(name, "{") {
			continue // labeled series are per-endpoint detail; totals suffice
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			continue
		}
		out[name] = v
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// waitHealthy polls /healthz until the server answers.
func waitHealthy(client *http.Client, server string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(server + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server %s not healthy after %s: %v", server, timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// printSummary writes the human-readable digest of the run.
func printSummary(rep *report) {
	t := rep.Total
	fmt.Printf("dcaload: %d requests in %.1fs — %.0f req/s, p50 %.2fms p95 %.2fms p99 %.2fms\n",
		t.Requests, float64(rep.Config.DurationMS)/1e3, t.Throughput, t.P50MS, t.P95MS, t.P99MS)
	fmt.Printf("dcaload: %d ok, %d throttled (%.1f%%), %d errors\n",
		t.OK, t.Throttled, 100*t.ThrottledRate, t.Errors)
	for _, name := range shapeNames {
		s, ok := rep.PerShape[name]
		if !ok {
			continue
		}
		fmt.Printf("dcaload:   %-5s %6d req  %7.0f req/s  p50 %8.2fms  p99 %8.2fms  429 %5.1f%%\n",
			name, s.Requests, s.Throughput, s.P50MS, s.P99MS, 100*s.ThrottledRate)
	}
	if hits, ok := rep.ServerMetrics["dcaserve_store_hits_total"]; ok {
		fmt.Printf("dcaload: server saw %.0f store hits, %.0f misses, %.0f coalesced\n",
			hits, rep.ServerMetrics["dcaserve_store_misses_total"], rep.ServerMetrics["dcaserve_store_coalesced_total"])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dcaload:", err)
	os.Exit(1)
}
