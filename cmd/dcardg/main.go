// Command dcardg builds the register dependence graph (the paper's
// Figure 2 formalism) of a workload or assembly file and prints it as
// Graphviz DOT (LdSt-slice nodes shaded) or as a slice-membership listing.
//
// Usage:
//
//	dcardg -bench compress -dot > compress.dot
//	dcardg -program examples/testdata/fig2.s        # membership listing
//	dcardg -bench go -static                        # compiler's view
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/asm"
	"repro/internal/prog"
	"repro/internal/rdg"
	"repro/internal/workload"
)

func main() {
	var (
		bench  = flag.String("bench", "", "workload name")
		file   = flag.String("program", "", "assembly file instead of a workload")
		dot    = flag.Bool("dot", false, "emit Graphviz DOT instead of a listing")
		static = flag.Bool("static", false, "build the flow-insensitive static RDG")
		window = flag.Uint64("window", 100_000, "dynamic-build instruction window")
	)
	flag.Parse()

	var p *prog.Program
	var err error
	switch {
	case *file != "":
		var src []byte
		if src, err = os.ReadFile(*file); err == nil {
			p, err = asm.Assemble(filepath.Base(*file), string(src))
		}
	case *bench != "":
		p, err = workload.Load(*bench)
	default:
		fmt.Fprintln(os.Stderr, "dcardg: need -bench or -program")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	var g *rdg.Graph
	if *static {
		g = rdg.BuildStatic(p)
	} else {
		if g, err = rdg.BuildDynamic(p, *window); err != nil {
			fatal(err)
		}
	}

	if *dot {
		fmt.Print(g.Dot(p.Name))
		return
	}

	ldst, br := g.LdStSlice(), g.BrSlice()
	fmt.Printf("%s: %d nodes, %d edges (%s RDG)\n\n", p.Name, len(g.Nodes()), g.NumEdges(),
		map[bool]string{true: "static", false: "dynamic"}[*static])
	fmt.Printf("%4s  %-26s %-5s %-5s\n", "pc", "instruction", "LdSt", "Br")
	for pc, in := range p.Text {
		mark := func(b bool) string {
			if b {
				return "  x"
			}
			return ""
		}
		fmt.Printf("%4d  %-26s %-5s %-5s\n", pc, in.String(), mark(ldst[pc]), mark(br[pc]))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dcardg:", err)
	os.Exit(1)
}
