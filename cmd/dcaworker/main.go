// Command dcaworker is a simulation worker: it drains a dcaserve job
// queue over HTTP. Each of its pull loops long-polls POST /v1/leases for
// a batch of planned jobs, simulates them in-process (the same
// job.Direct executor dcaserve uses, so results are bit-identical no
// matter which machine ran them), uploads each result with its digest for
// server-side verification, and heartbeats leases that outlive their TTL.
// An empty queue backs the loops off with jittered sleeps; SIGINT/SIGTERM
// drain cleanly — in-flight jobs finish simulating and upload before the
// process exits, so no leased work is lost.
//
// Run as many dcaworker processes on as many machines as the grid needs;
// the queue deduplicates by job digest, so a fleet never simulates the
// same cell twice.
//
// Usage:
//
//	dcaworker -server http://localhost:8080             # all cores
//	dcaworker -server http://host:8080 -n 4 -batch 2    # 4 loops, 2 jobs per lease
//	dcaworker -server http://host:8080 -v               # log per-job events
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/job"
	"repro/internal/job/worker"
)

func main() {
	var (
		server  = flag.String("server", "http://localhost:8080", "dcaserve base URL")
		loops   = flag.Int("n", 0, "concurrent pull loops (0 = all cores)")
		batch   = flag.Int("batch", 1, "jobs leased per poll")
		wait    = flag.Duration("wait", 10*time.Second, "server-side long-poll budget per lease request")
		backoff = flag.Duration("backoff", 5*time.Second, "max jittered sleep after an empty poll or server error")
		id      = flag.String("id", "", "client ID sent as X-Client-ID (names this worker in server logs and rate limits)")
		verbose = flag.Bool("v", false, "log per-job events")
		traced  = flag.Bool("traced", false, "record each (benchmark, window) oracle stream once per process and replay it for every leased cell (internal/trace)")
	)
	flag.Parse()

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	var runner job.Runner
	if *traced {
		runner = &job.Traced{}
	}
	f, err := worker.New(worker.Options{
		Server:     *server,
		Loops:      *loops,
		MaxJobs:    *batch,
		Wait:       *wait,
		MaxBackoff: *backoff,
		Logf:       logf,
		ClientID:   *id,
		Runner:     runner,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcaworker:", err)
		os.Exit(1)
	}

	// First signal drains (loops stop leasing, in-flight jobs finish and
	// upload); a second one kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("dcaworker: polling %s\n", *server)
	if err := f.Run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "dcaworker:", err)
		os.Exit(1)
	}
	m := f.Metrics()
	fmt.Printf("dcaworker: drained (%d completed, %d failed, %d lost leases)\n",
		m.Completed, m.Failed, m.Lost)
}
