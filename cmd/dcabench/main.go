// Command dcabench regenerates the tables and figures of "Dynamic Cluster
// Assignment Mechanisms" (Canal, Parcerisa, González — HPCA 2000) from the
// repository's simulator and workload analogs.
//
// Usage:
//
//	dcabench                      # every exhibit, default budgets
//	dcabench -exp fig14,fig16     # selected exhibits
//	dcabench -measure 1000000     # longer measurement windows
//	dcabench -benchmarks go,gcc   # restrict the workload set
//	dcabench -j 4                 # bound the worker pool (default: all cores)
//	dcabench -clusters 4          # run the grid on a 4-cluster machine
//	dcabench -progress=false      # silence the per-cell completion log
//	dcabench -json grid.json      # archive the grid (jobs + digests + stats)
//	dcabench -store ./results     # reuse cells across invocations by digest
//	dcabench -traced              # record each oracle stream once, replay per cell
//	dcabench -attrib              # per-cell stall taxonomy (printed + in -json)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/job"
	"repro/internal/job/store"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated exhibit ids (table1,table2,fig3..fig16) or 'all'")
		warmup   = flag.Uint64("warmup", 100_000, "warm-up instructions per run (not measured)")
		measure  = flag.Uint64("measure", 1_000_000, "measured instructions per run")
		benches  = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all eight)")
		csvPath  = flag.String("csv", "", "also write the raw grid as CSV to this file")
		jsonPath = flag.String("json", "", "also write the full grid — jobs, digests, per-cell stats — as JSON to this file ('-' for stdout)")
		storeDir = flag.String("store", "", "cache results as JSON under this directory; cells already present are not re-simulated")
		jobs     = flag.Int("j", 0, "grid cells to simulate in parallel (0 = all cores)")
		clusters = flag.Int("clusters", 2, "cluster count of the steered machine (2 = the paper's asymmetric processor, else config.ClusteredN)")
		progress = flag.Bool("progress", true, "log per-cell completion and ETA to stderr")
		traced   = flag.Bool("traced", false, "record each (benchmark, window) oracle stream once and replay it for every cell (internal/trace)")
		attrib   = flag.Bool("attrib", false, "attribute every measured cycle to a stall class; breakdowns are printed and folded into -json")
	)
	flag.Parse()

	opts := experiments.DefaultOptions()
	opts.Warmup, opts.Measure = *warmup, *measure
	opts.Parallelism = *jobs
	opts.Clusters = *clusters
	opts.Attrib = *attrib
	if *progress {
		opts.Progress = func(p experiments.Progress) {
			if p.Err != nil {
				fmt.Fprintf(os.Stderr, "[%3d/%3d] %s/%s FAILED: %v\n",
					p.Completed, p.Total, p.Cell.Scheme, p.Cell.Benchmark, p.Err)
				return
			}
			eta := "--"
			if p.Remaining > 0 {
				eta = p.Remaining.Round(time.Second).String()
			}
			fmt.Fprintf(os.Stderr, "[%3d/%3d] %-16s %-8s %8v  ETA %s\n",
				p.Completed, p.Total, p.Cell.Scheme, p.Cell.Benchmark,
				p.Elapsed.Round(time.Millisecond), eta)
		}
	}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
		for _, b := range opts.Benchmarks {
			if err := job.ValidateBenchmark(b); err != nil {
				fatal(err)
			}
		}
	}

	// Runner stack, innermost first: Traced (record-once/replay-many
	// front end) under Cached (content-addressed result reuse). The same
	// tiered store carries both the JSON results and the encoded traces.
	var cached *store.Cached
	var tracedRunner *job.Traced
	if *traced {
		tracedRunner = &job.Traced{}
		opts.Runner = tracedRunner
	}
	if *storeDir != "" {
		disk, err := store.NewDisk(*storeDir)
		if err != nil {
			fatal(err)
		}
		tiered := store.Tiered{Fast: store.NewMemory(1024), Slow: disk}
		var next job.Runner
		if tracedRunner != nil {
			tracedRunner.Blobs = tiered
			next = tracedRunner
		}
		cached = store.NewCached(tiered, next)
		opts.Runner = cached
	}

	// With -json - the machine-readable export owns stdout; the banner,
	// tables and timings move to stderr so the output stays parseable.
	human := os.Stdout
	if *jsonPath == "-" {
		human = os.Stderr
	}

	var wanted []experiments.Exhibit
	if *exp == "all" {
		wanted = experiments.Exhibits()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := experiments.ExhibitByID(strings.TrimSpace(id))
			if !ok {
				fatal(fmt.Errorf("unknown exhibit %q", id))
			}
			wanted = append(wanted, e)
		}
	}

	// Collect the union of schemes the requested exhibits need and run the
	// grid once.
	seen := map[string]bool{}
	var schemes []string
	for _, e := range wanted {
		for _, s := range e.Schemes {
			if !seen[s] {
				seen[s] = true
				schemes = append(schemes, s)
			}
		}
	}
	effBenches := job.GridSpec{Benchmarks: opts.Benchmarks}.EffectiveBenchmarks()
	workers := opts.Workers(len(experiments.Cells(schemes, effBenches)))
	start := time.Now()
	fmt.Fprintf(human, "running %d scheme(s) x %d benchmark(s), %d+%d instructions each, %d worker(s)...\n\n",
		len(schemes)+1, len(effBenches), opts.Warmup, opts.Measure, workers)
	res, err := experiments.Run(schemes, opts)
	if err != nil {
		fatal(err)
	}
	for _, e := range wanted {
		fmt.Fprintln(human, "==", e.Title)
		fmt.Fprintln(human, e.Render(res))
	}
	if *attrib {
		fmt.Fprintln(human, "== Cycle attribution (stall taxonomy per cell)")
		fmt.Fprintln(human, res.FormatAttribution())
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(human, "raw grid written to %s\n", *csvPath)
	}
	if *jsonPath != "" {
		export, err := res.Export()
		if err != nil {
			fatal(err)
		}
		raw, err := json.MarshalIndent(export, "", "  ")
		if err != nil {
			fatal(err)
		}
		raw = append(raw, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(raw)
		} else if err := os.WriteFile(*jsonPath, raw, 0o644); err != nil {
			fatal(err)
		} else {
			fmt.Fprintf(human, "grid export (%d cells) written to %s\n", len(export.Cells), *jsonPath)
		}
	}
	if cached != nil {
		m := cached.Metrics()
		fmt.Fprintf(human, "result store: %d hits, %d simulated, %d coalesced\n", m.Hits, m.Misses, m.Coalesced)
	}
	if tracedRunner != nil {
		m := tracedRunner.Metrics()
		fmt.Fprintf(human, "trace layer: %d recorded, %d from store, %d replayed, %d live fallbacks\n",
			m.Recordings, m.BlobHits, m.Replays, m.LiveFallbacks)
	}
	fmt.Fprintf(human, "total simulation time: %v\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dcabench:", err)
	os.Exit(1)
}
