package main

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// This file is GET /v1/watch: a streaming NDJSON subscription on result
// keys, generalizing the /v1/grids progress-stream pattern to the
// asynchronous queue. A client that enqueued work follows completion live —
// including results uploaded by remote workers — instead of polling
// /v1/results. The watch hub hears about every completion through the
// store.Notify wrapper (all write paths share the server's store) and about
// terminal failures through the queue's OnFailed hook.

// maxWatchKeys bounds one subscription; a grid of every scheme × benchmark
// fits comfortably, while an unbounded list would let one request pin
// arbitrary server memory.
const maxWatchKeys = 1024

// watchRecheck is the belt-and-braces sweep interval: subscriptions also
// re-poll their pending keys directly, so a notification lost to a full
// subscriber buffer delays an event rather than losing it.
const watchRecheck = 2 * time.Second

// watchNote is one hub fan-out message.
type watchNote struct {
	key    string
	failed bool
	reason string
}

// watchHub fans completion and failure notifications out to subscribed
// watch streams. Sends never block: each subscriber channel is buffered
// and written best-effort (the periodic re-check recovers drops), so a
// slow watcher cannot stall the store Put or queue settlement that fired
// the notification.
type watchHub struct {
	mu   sync.Mutex
	subs map[string]map[chan watchNote]struct{} // key -> subscribers
}

func newWatchHub() *watchHub {
	return &watchHub{subs: make(map[string]map[chan watchNote]struct{})}
}

// subscribe registers ch for every key; the caller must unsubscribe.
func (h *watchHub) subscribe(keys []string, ch chan watchNote) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, key := range keys {
		set, ok := h.subs[key]
		if !ok {
			set = make(map[chan watchNote]struct{})
			h.subs[key] = set
		}
		set[ch] = struct{}{}
	}
}

// unsubscribe removes ch from every key.
func (h *watchHub) unsubscribe(keys []string, ch chan watchNote) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, key := range keys {
		if set, ok := h.subs[key]; ok {
			delete(set, ch)
			if len(set) == 0 {
				delete(h.subs, key)
			}
		}
	}
}

// done announces a completed result (the store.Notify hook).
func (h *watchHub) done(key string) { h.notify(watchNote{key: key}) }

// failed announces a terminally-failed job (the queue.Options.OnFailed
// hook).
func (h *watchHub) failed(key, reason string) {
	h.notify(watchNote{key: key, failed: true, reason: reason})
}

func (h *watchHub) notify(n watchNote) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs[n.key] {
		select {
		case ch <- n:
		default: // full buffer: the watcher's re-check sweep recovers
		}
	}
}

// watcherCount reports how many keys currently have subscribers (the
// dcaserve_watch_keys gauge).
func (h *watchHub) watcherCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// watchEvent is one NDJSON line of a /v1/watch response. Per-key events
// ("done", "failed") carry Key (and Error for failures); the final
// "complete" event carries the Summary tally. The counts live in a pointer
// sub-struct — not omitempty scalars — so a summary with zero failures
// still puts "failed":0 on the wire.
type watchEvent struct {
	Type    string        `json:"type"` // "done" | "failed" | "complete"
	Key     string        `json:"key,omitempty"`
	Error   string        `json:"error,omitempty"`
	Summary *watchSummary `json:"summary,omitempty"`
}

// watchSummary tallies a finished subscription.
type watchSummary struct {
	Done   int `json:"done"`
	Failed int `json:"failed"`
}

// handleWatch streams completion events for the requested keys: one
// "done"/"failed" event per key as it settles (keys already settled at
// subscription time settle immediately), then one "complete" summary, then
// EOF. A failed job can still succeed later (re-enqueueing resets its
// budget), but for the watcher it is terminal — the stream reports the
// state and moves on.
func (s *server) handleWatch(w http.ResponseWriter, r *http.Request) {
	raw := strings.Split(r.URL.Query().Get("keys"), ",")
	keys := make([]string, 0, len(raw))
	seen := make(map[string]bool, len(raw))
	for _, k := range raw {
		k = strings.TrimSpace(k)
		if k == "" || seen[k] {
			continue
		}
		if !validKey(k) {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("watch key %q is not a result key (keys are hex sha-256 digests)", k))
			return
		}
		seen[k] = true
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("watch needs ?keys=<key>[,<key>...]"))
		return
	}
	if len(keys) > maxWatchKeys {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("watch accepts at most %d keys, got %d", maxWatchKeys, len(keys)))
		return
	}

	// Subscribe BEFORE the initial sweep: a completion landing between the
	// sweep and the subscription would otherwise be missed until re-check.
	ch := make(chan watchNote, 2*len(keys)+4)
	s.watch.subscribe(keys, ch)
	defer s.watch.unsubscribe(keys, ch)

	w.Header().Set("Content-Type", "application/x-ndjson")
	stream := newNDJSONStream(w)
	summary := watchSummary{}
	pending := make(map[string]bool, len(keys))
	for _, k := range keys {
		pending[k] = true
	}
	settle := func(key string, failed bool, reason string) {
		if !pending[key] {
			return
		}
		delete(pending, key)
		if failed {
			summary.Failed++
			stream.emit(watchEvent{Type: "failed", Key: key, Error: reason})
			return
		}
		summary.Done++
		stream.emit(watchEvent{Type: "done", Key: key})
	}
	sweep := func() {
		for key := range pending {
			if _, ok, err := s.st.Get(key); err == nil && ok {
				settle(key, false, "")
				continue
			}
			if reason, ok := s.queue.Failed(key); ok {
				settle(key, true, reason)
			}
		}
	}

	sweep()
	ticker := time.NewTicker(watchRecheck)
	defer ticker.Stop()
	for len(pending) > 0 && !stream.dead {
		select {
		case <-r.Context().Done():
			return
		case n := <-ch:
			settle(n.key, n.failed, n.reason)
		case <-ticker.C:
			sweep()
		}
	}
	stream.emit(watchEvent{Type: "complete", Summary: &summary})
}
