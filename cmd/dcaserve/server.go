package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"time"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/job"
	"repro/internal/job/queue"
	"repro/internal/job/store"
	"repro/internal/stats"
	"repro/internal/steer"
	"repro/internal/workload"
)

// server is the simulation service: it plans submitted cells into
// canonical jobs and dispatches them through one shared coalescing,
// store-backed runner — so identical cells, whether submitted alone,
// inside a grid, or by N clients at once, are simulated exactly once.
type server struct {
	st          store.Store
	runner      *store.Cached
	queue       *queue.Queue
	parallelism int
	// sem bounds concurrent single-job simulations across all /v1/jobs
	// requests (grids bound their own worker pools): N clients posting N
	// distinct expensive cells queue here instead of pinning N cores.
	sem chan struct{}
}

// newServer builds a server over st; next is the underlying executor (nil
// means job.Direct{} — tests inject counting or failing runners).
// parallelism bounds each grid's worker pool and the total concurrent
// single-job simulations (0 = all cores). qopts tunes the distributed
// queue (lease TTL, attempt budget); its Results store is always this
// server's st, so workers and in-process simulations share one cache.
func newServer(st store.Store, next job.Runner, parallelism int, qopts queue.Options) *server {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	qopts.Results = st
	return &server{
		st:          st,
		runner:      store.NewCached(st, next),
		queue:       queue.New(qopts),
		parallelism: parallelism,
		sem:         make(chan struct{}, parallelism),
	}
}

// handler routes the v1 API.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/catalog", s.handleCatalog)
	mux.HandleFunc("POST /v1/jobs", s.handleJob)
	mux.HandleFunc("POST /v1/grids", s.handleGrid)
	mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	mux.HandleFunc("POST /v1/queue", s.handleQueue)
	mux.HandleFunc("GET /v1/queue/stats", s.handleQueueStats)
	mux.HandleFunc("POST /v1/leases", s.handleLease)
	mux.HandleFunc("POST /v1/leases/{id}/complete", s.handleComplete)
	mux.HandleFunc("POST /v1/leases/{id}/extend", s.handleExtend)
	return mux
}

// jobResponse is the reply to POST /v1/jobs and GET /v1/results/{key}.
type jobResponse struct {
	// Key is the job's content digest — the handle GET /v1/results serves
	// the result under.
	Key string `json:"key"`
	// Cached reports whether the result was served straight from the
	// store (false on submissions that simulated or coalesced onto an
	// in-flight simulation; always true from /v1/results).
	Cached bool `json:"cached"`
	// ElapsedMS is the server-side handling time of this request.
	ElapsedMS    float64    `json:"elapsed_ms"`
	Result       *stats.Run `json:"result"`
	ResultDigest string     `json:"result_digest"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// logf is the server's log sink (a seam so tests can capture it).
var logf = log.Printf

// writeJSON encodes v onto w. By the time Encode runs the status line is
// on the wire, so an encode error cannot change the response — but it
// must not vanish either: it is logged and returned so handlers that care
// (none need to today) can see the response was truncated. The usual
// cause is the client hanging up mid-body.
func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		logf("dcaserve: write response (status %d): %v", status, err)
		return err
	}
	return nil
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	m := s.runner.Metrics()
	qs := s.queue.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"results":        s.st.Len(),
		"hits":           m.Hits,
		"misses":         m.Misses,
		"coalesced":      m.Coalesced,
		"queue_depth":    qs.Depth,
		"queue_inflight": qs.Inflight,
	})
}

// catalogResponse is the reply to GET /v1/catalog: everything a worker or
// client needs to build valid submissions without hard-coding names. The
// lists come from the same registries and validators the planners use, so
// the catalog cannot drift from what the server accepts.
type catalogResponse struct {
	// Schemes are the registered steering schemes; PseudoSchemes are the
	// reference machines (base, ub) that are valid in specs but are not
	// steering rules.
	Schemes       []string `json:"schemes"`
	PseudoSchemes []string `json:"pseudo_schemes"`
	Benchmarks    []string `json:"benchmarks"`
	// Clusters lists every cluster count job.ValidateClusters accepts (0
	// selects the paper's asymmetric two-cluster machine).
	Clusters []int `json:"clusters"`
	// DefaultParams are the balance constants used when a spec omits
	// params.
	DefaultParams steer.Params `json:"default_params"`
	// LeaseTTLMS and MaxLeaseWaitMS describe the queue's lease protocol
	// for workers.
	LeaseTTLMS     int64 `json:"lease_ttl_ms"`
	MaxLeaseWaitMS int64 `json:"max_lease_wait_ms"`
}

// handleCatalog reports the server's capabilities.
func (s *server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	clusters := make([]int, 0, config.MaxClusters+1)
	for n := 0; n <= config.MaxClusters; n++ {
		if job.ValidateClusters(n) == nil {
			clusters = append(clusters, n)
		}
	}
	writeJSON(w, http.StatusOK, catalogResponse{
		Schemes:        steer.Names(),
		PseudoSchemes:  []string{job.BaseScheme, job.UBScheme},
		Benchmarks:     workload.Names(),
		Clusters:       clusters,
		DefaultParams:  steer.DefaultParams(),
		LeaseTTLMS:     s.queue.LeaseTTL().Milliseconds(),
		MaxLeaseWaitMS: maxLeaseWait.Milliseconds(),
	})
}

// handleJob runs one cell: plan the spec, consult the store, simulate on
// a miss (coalescing with any identical in-flight submission).
func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	var spec job.Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed job spec: %w", err))
		return
	}
	j, err := spec.Plan()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Acquire a simulation slot (callers can give up while queued; store
	// hits inside the runner still pay the queue, which is what keeps a
	// thundering herd of distinct expensive jobs bounded).
	select {
	case s.sem <- struct{}{}:
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable, r.Context().Err())
		return
	}
	run, outcome, err := s.runner.RunWithOutcome(r.Context(), j)
	<-s.sem
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, jobResponse{
		Key:          j.Key(),
		Cached:       outcome == store.OutcomeHit,
		ElapsedMS:    float64(time.Since(started).Microseconds()) / 1e3,
		Result:       run,
		ResultDigest: job.ResultDigest(run),
	})
}

// gridEvent is one NDJSON line of a /v1/grids response: progress events
// while the grid runs, then a final result (or error) event.
type gridEvent struct {
	Type string `json:"type"` // "progress" | "result" | "error"
	// Progress fields.
	Scheme      string  `json:"scheme,omitempty"`
	Benchmark   string  `json:"benchmark,omitempty"`
	Completed   int     `json:"completed,omitempty"`
	Total       int     `json:"total,omitempty"`
	ElapsedMS   float64 `json:"elapsed_ms,omitempty"`
	RemainingMS float64 `json:"remaining_ms,omitempty"`
	// Result payload.
	Grid *experiments.Export `json:"grid,omitempty"`
	// Error payload.
	Error string `json:"error,omitempty"`
}

// handleGrid runs a whole scheme × benchmark batch and streams progress:
// the response is NDJSON — one "progress" event per completed cell as it
// lands, then one "result" event carrying the full grid export (jobs,
// digests, per-cell stats). The base pseudo-scheme is always included,
// mirroring the experiments engine.
func (s *server) handleGrid(w http.ResponseWriter, r *http.Request) {
	var spec job.GridSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed grid spec: %w", err))
		return
	}
	if spec.Measure == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("measure must be positive"))
		return
	}
	// Validate up front, while the status code is still writable — once
	// the stream starts, failures degrade to in-stream error events.
	if err := job.ValidateInputs(spec.Schemes, spec.EffectiveBenchmarks(), spec.Clusters); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	params := steer.DefaultParams()
	if spec.Params != nil {
		params = *spec.Params
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev gridEvent) {
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}

	opts := experiments.Options{
		Warmup:      spec.Warmup,
		Measure:     spec.Measure,
		Benchmarks:  spec.Benchmarks,
		Clusters:    spec.Clusters,
		Params:      params,
		Parallelism: s.parallelism,
		// Grid workers share the server-wide simulation semaphore, so K
		// concurrent grid requests still run at most `parallelism` cells
		// in total instead of K pools of that size each.
		Runner: semRunner{sem: s.sem, next: s.runner},
		Progress: func(p experiments.Progress) {
			emit(gridEvent{
				Type:        "progress",
				Scheme:      p.Cell.Scheme,
				Benchmark:   p.Cell.Benchmark,
				Completed:   p.Completed,
				Total:       p.Total,
				ElapsedMS:   float64(p.Elapsed.Microseconds()) / 1e3,
				RemainingMS: float64(p.Remaining.Microseconds()) / 1e3,
			})
		},
	}
	res, err := experiments.RunContext(r.Context(), spec.Schemes, opts)
	if err != nil {
		emit(gridEvent{Type: "error", Error: err.Error()})
		return
	}
	export, err := res.Export()
	if err != nil {
		emit(gridEvent{Type: "error", Error: err.Error()})
		return
	}
	emit(gridEvent{Type: "result", Grid: export})
}

// semRunner gates a runner behind the server's simulation semaphore.
type semRunner struct {
	sem  chan struct{}
	next job.Runner
}

// Run implements job.Runner.
func (s semRunner) Run(ctx context.Context, j job.Job) (*stats.Run, error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-s.sem }()
	return s.next.Run(ctx, j)
}

// validKey matches job content digests (hex SHA-256). Anything else is an
// unknown result by definition — mapped to 404 up front so a malformed
// key never reaches a backend that might report it as a store failure.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handleResult serves a stored result by content digest.
func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		writeError(w, http.StatusNotFound, fmt.Errorf("no result for key %s (keys are hex sha-256 digests)", key))
		return
	}
	run, ok, err := s.st.Get(key)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no result for key %s", key))
		return
	}
	writeJSON(w, http.StatusOK, jobResponse{
		Key:          key,
		Cached:       true,
		Result:       run,
		ResultDigest: job.ResultDigest(run),
	})
}
