package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/job"
	"repro/internal/job/store"
	"repro/internal/stats"
	"repro/internal/steer"
)

// server is the simulation service: it plans submitted cells into
// canonical jobs and dispatches them through one shared coalescing,
// store-backed runner — so identical cells, whether submitted alone,
// inside a grid, or by N clients at once, are simulated exactly once.
type server struct {
	st          store.Store
	runner      *store.Cached
	parallelism int
	// sem bounds concurrent single-job simulations across all /v1/jobs
	// requests (grids bound their own worker pools): N clients posting N
	// distinct expensive cells queue here instead of pinning N cores.
	sem chan struct{}
}

// newServer builds a server over st; next is the underlying executor (nil
// means job.Direct{} — tests inject counting or failing runners).
// parallelism bounds each grid's worker pool and the total concurrent
// single-job simulations (0 = all cores).
func newServer(st store.Store, next job.Runner, parallelism int) *server {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &server{
		st:          st,
		runner:      store.NewCached(st, next),
		parallelism: parallelism,
		sem:         make(chan struct{}, parallelism),
	}
}

// handler routes the v1 API.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("POST /v1/jobs", s.handleJob)
	mux.HandleFunc("POST /v1/grids", s.handleGrid)
	mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	return mux
}

// jobResponse is the reply to POST /v1/jobs and GET /v1/results/{key}.
type jobResponse struct {
	// Key is the job's content digest — the handle GET /v1/results serves
	// the result under.
	Key string `json:"key"`
	// Cached reports whether the result was served straight from the
	// store (false on submissions that simulated or coalesced onto an
	// in-flight simulation; always true from /v1/results).
	Cached bool `json:"cached"`
	// ElapsedMS is the server-side handling time of this request.
	ElapsedMS    float64    `json:"elapsed_ms"`
	Result       *stats.Run `json:"result"`
	ResultDigest string     `json:"result_digest"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	m := s.runner.Metrics()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"results":   s.st.Len(),
		"hits":      m.Hits,
		"misses":    m.Misses,
		"coalesced": m.Coalesced,
	})
}

// handleJob runs one cell: plan the spec, consult the store, simulate on
// a miss (coalescing with any identical in-flight submission).
func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	var spec job.Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed job spec: %w", err))
		return
	}
	if spec.Measure == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("measure must be positive"))
		return
	}
	j, err := spec.Plan()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Acquire a simulation slot (callers can give up while queued; store
	// hits inside the runner still pay the queue, which is what keeps a
	// thundering herd of distinct expensive jobs bounded).
	select {
	case s.sem <- struct{}{}:
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable, r.Context().Err())
		return
	}
	run, outcome, err := s.runner.RunWithOutcome(r.Context(), j)
	<-s.sem
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, jobResponse{
		Key:          j.Key(),
		Cached:       outcome == store.OutcomeHit,
		ElapsedMS:    float64(time.Since(started).Microseconds()) / 1e3,
		Result:       run,
		ResultDigest: job.ResultDigest(run),
	})
}

// gridEvent is one NDJSON line of a /v1/grids response: progress events
// while the grid runs, then a final result (or error) event.
type gridEvent struct {
	Type string `json:"type"` // "progress" | "result" | "error"
	// Progress fields.
	Scheme      string  `json:"scheme,omitempty"`
	Benchmark   string  `json:"benchmark,omitempty"`
	Completed   int     `json:"completed,omitempty"`
	Total       int     `json:"total,omitempty"`
	ElapsedMS   float64 `json:"elapsed_ms,omitempty"`
	RemainingMS float64 `json:"remaining_ms,omitempty"`
	// Result payload.
	Grid *experiments.Export `json:"grid,omitempty"`
	// Error payload.
	Error string `json:"error,omitempty"`
}

// handleGrid runs a whole scheme × benchmark batch and streams progress:
// the response is NDJSON — one "progress" event per completed cell as it
// lands, then one "result" event carrying the full grid export (jobs,
// digests, per-cell stats). The base pseudo-scheme is always included,
// mirroring the experiments engine.
func (s *server) handleGrid(w http.ResponseWriter, r *http.Request) {
	var spec job.GridSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed grid spec: %w", err))
		return
	}
	if spec.Measure == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("measure must be positive"))
		return
	}
	// Validate up front, while the status code is still writable — once
	// the stream starts, failures degrade to in-stream error events.
	if err := job.ValidateInputs(spec.Schemes, spec.EffectiveBenchmarks(), spec.Clusters); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	params := steer.DefaultParams()
	if spec.Params != nil {
		params = *spec.Params
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev gridEvent) {
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}

	opts := experiments.Options{
		Warmup:      spec.Warmup,
		Measure:     spec.Measure,
		Benchmarks:  spec.Benchmarks,
		Clusters:    spec.Clusters,
		Params:      params,
		Parallelism: s.parallelism,
		// Grid workers share the server-wide simulation semaphore, so K
		// concurrent grid requests still run at most `parallelism` cells
		// in total instead of K pools of that size each.
		Runner: semRunner{sem: s.sem, next: s.runner},
		Progress: func(p experiments.Progress) {
			emit(gridEvent{
				Type:        "progress",
				Scheme:      p.Cell.Scheme,
				Benchmark:   p.Cell.Benchmark,
				Completed:   p.Completed,
				Total:       p.Total,
				ElapsedMS:   float64(p.Elapsed.Microseconds()) / 1e3,
				RemainingMS: float64(p.Remaining.Microseconds()) / 1e3,
			})
		},
	}
	res, err := experiments.RunContext(r.Context(), spec.Schemes, opts)
	if err != nil {
		emit(gridEvent{Type: "error", Error: err.Error()})
		return
	}
	export, err := res.Export()
	if err != nil {
		emit(gridEvent{Type: "error", Error: err.Error()})
		return
	}
	emit(gridEvent{Type: "result", Grid: export})
}

// semRunner gates a runner behind the server's simulation semaphore.
type semRunner struct {
	sem  chan struct{}
	next job.Runner
}

// Run implements job.Runner.
func (s semRunner) Run(ctx context.Context, j job.Job) (*stats.Run, error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-s.sem }()
	return s.next.Run(ctx, j)
}

// validKey matches job content digests (hex SHA-256). Anything else is an
// unknown result by definition — mapped to 404 up front so a malformed
// key never reaches a backend that might report it as a store failure.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handleResult serves a stored result by content digest.
func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		writeError(w, http.StatusNotFound, fmt.Errorf("no result for key %s (keys are hex sha-256 digests)", key))
		return
	}
	run, ok, err := s.st.Get(key)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no result for key %s", key))
		return
	}
	writeJSON(w, http.StatusOK, jobResponse{
		Key:          key,
		Cached:       true,
		Result:       run,
		ResultDigest: job.ResultDigest(run),
	})
}
