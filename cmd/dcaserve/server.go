package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"time"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/job"
	"repro/internal/job/queue"
	"repro/internal/job/store"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/stats"
	"repro/internal/steer"
	"repro/internal/workload"
)

// server is the simulation service: it plans submitted cells into
// canonical jobs and dispatches them through one shared coalescing,
// store-backed runner — so identical cells, whether submitted alone,
// inside a grid, or by N clients at once, are simulated exactly once.
type server struct {
	st          store.Store
	runner      *store.Cached
	queue       *queue.Queue
	parallelism int
	// sem bounds concurrent single-job simulations across all /v1/jobs
	// requests (grids bound their own worker pools): N clients posting N
	// distinct expensive cells queue here instead of pinning N cores.
	sem chan struct{}
	// admit is the bounded waiting room in front of sem: a /v1/jobs
	// request takes an admit slot (non-blocking — full means 429) before
	// it may wait on sem, so the line outside the simulator has a fixed
	// length instead of growing with the herd.
	admit   chan struct{}
	limiter *rateLimiter // nil = rate limiting off
	watch   *watchHub
	metrics *serverMetrics
}

// newServer builds a server over st; next is the underlying executor (nil
// means job.Direct{} — tests inject counting or failing runners).
// parallelism bounds each grid's worker pool and the total concurrent
// single-job simulations (0 = all cores). qopts tunes the distributed
// queue (lease TTL, attempt budget); its Results store is always this
// server's st — wrapped in store.Notify so the watch hub hears every
// completion — and its OnFailed hook feeds the hub too. lim configures
// admission control (zero values: limiter off, default waiting room).
func newServer(st store.Store, next job.Runner, parallelism int, qopts queue.Options, lim limits) *server {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	hub := newWatchHub()
	notifying := store.NewNotify(st, hub.done)
	qopts.Results = notifying
	qopts.OnFailed = hub.failed
	admitQueue := lim.AdmitQueue
	if admitQueue <= 0 {
		admitQueue = 4 * parallelism
	}
	s := &server{
		st:          notifying,
		runner:      store.NewCached(notifying, next),
		queue:       queue.New(qopts),
		parallelism: parallelism,
		sem:         make(chan struct{}, parallelism),
		admit:       make(chan struct{}, parallelism+admitQueue),
		watch:       hub,
	}
	if lim.Rate > 0 {
		s.limiter = newRateLimiter(lim.Rate, lim.Burst, time.Now)
	}
	s.initMetrics()
	return s
}

// handler routes the v1 API. Every route is wrapped in the per-endpoint
// metrics middleware; the submission endpoints additionally pass the
// per-client rate limiter; the whole mux emits one structured access-log
// line per request (the outermost wrapper, so 404s are logged too).
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc, throttled bool) {
		var wrapped http.Handler = h
		if throttled {
			wrapped = s.throttle(pattern, wrapped)
		}
		mux.Handle(pattern, s.metrics.httpm.Handler(pattern, wrapped))
	}
	route("GET /healthz", s.handleHealth, false)
	route("GET /metrics", s.handleMetrics, false)
	route("GET /v1/catalog", s.handleCatalog, false)
	route("POST /v1/jobs", s.handleJob, true)
	route("POST /v1/grids", s.handleGrid, true)
	route("GET /v1/results/{key}", s.handleResult, false)
	route("GET /v1/watch", s.handleWatch, false)
	route("POST /v1/queue", s.handleQueue, true)
	route("GET /v1/queue/stats", s.handleQueueStats, false)
	// The lease protocol is never throttled: a worker's heartbeat or
	// upload refused with 429 would requeue finished work.
	route("POST /v1/leases", s.handleLease, false)
	route("POST /v1/leases/{id}/complete", s.handleComplete, false)
	route("POST /v1/leases/{id}/extend", s.handleExtend, false)
	return obs.AccessLog(mux, func(format string, args ...any) { logf(format, args...) })
}

// jobSubmission is the POST /v1/jobs request body: a job spec plus the
// probe opt-in.
type jobSubmission struct {
	job.Spec
	// Probe attaches a cycle-attribution probe to this submission's
	// simulation. The stall breakdown comes back in the response's
	// attribution field — alongside the digest-addressed result, never
	// inside it, so the stored result stays bit-identical to an unprobed
	// run's.
	Probe bool `json:"probe"`
}

// jobResponse is the reply to POST /v1/jobs and GET /v1/results/{key}.
type jobResponse struct {
	// Key is the job's content digest — the handle GET /v1/results serves
	// the result under.
	Key string `json:"key"`
	// Cached reports whether the result was served straight from the
	// store (false on submissions that simulated or coalesced onto an
	// in-flight simulation; always true from /v1/results).
	Cached bool `json:"cached"`
	// ElapsedMS is the server-side handling time of this request.
	ElapsedMS    float64    `json:"elapsed_ms"`
	Result       *stats.Run `json:"result"`
	ResultDigest string     `json:"result_digest"`
	// Attribution is the stall breakdown of a probed submission; absent
	// otherwise (GET /v1/results never carries one — attribution needs a
	// live machine and is not stored).
	Attribution *probe.Report `json:"attribution,omitempty"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// logf is the server's log sink (a seam so tests can capture it).
var logf = log.Printf

// writeJSON encodes v onto w. By the time Encode runs the status line is
// on the wire, so an encode error cannot change the response — but it
// must not vanish either: it is logged and returned so handlers that care
// (none need to today) can see the response was truncated. The usual
// cause is the client hanging up mid-body.
func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		logf("dcaserve: write response (status %d): %v", status, err)
		return err
	}
	return nil
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// ndjsonStream writes one JSON value per line to a streaming response,
// with writeJSON's log-and-stop contract adapted to streams: the first
// encode failure (almost always the client hanging up mid-stream) is
// logged once, and every later emit is dropped instead of encoding and
// flushing into a dead connection. Not safe for concurrent emits — stream
// handlers already serialize theirs (grid progress callbacks run under the
// pool's mutex and the final event after the pool drains).
type ndjsonStream struct {
	enc     *json.Encoder
	flusher http.Flusher
	dead    bool
}

func newNDJSONStream(w http.ResponseWriter) *ndjsonStream {
	// Commit the status and flush headers now, before the first event:
	// callers only construct the stream once validation has passed, and a
	// client must be able to learn its request was accepted even when the
	// first event is minutes away.
	flusher, _ := w.(http.Flusher)
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}
	return &ndjsonStream{enc: json.NewEncoder(w), flusher: flusher}
}

// emit writes one event line and flushes it to the client.
func (s *ndjsonStream) emit(v any) {
	if s.dead {
		return
	}
	if err := s.enc.Encode(v); err != nil {
		s.dead = true
		logf("dcaserve: write stream event: %v", err)
		return
	}
	if s.flusher != nil {
		s.flusher.Flush()
	}
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	m := s.runner.Metrics()
	qs := s.queue.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"results":        s.st.Len(),
		"hits":           m.Hits,
		"misses":         m.Misses,
		"coalesced":      m.Coalesced,
		"queue_depth":    qs.Depth,
		"queue_inflight": qs.Inflight,
	})
}

// catalogResponse is the reply to GET /v1/catalog: everything a worker or
// client needs to build valid submissions without hard-coding names. The
// lists come from the same registries and validators the planners use, so
// the catalog cannot drift from what the server accepts.
type catalogResponse struct {
	// Schemes are the registered steering schemes; PseudoSchemes are the
	// reference machines (base, ub) that are valid in specs but are not
	// steering rules.
	Schemes       []string `json:"schemes"`
	PseudoSchemes []string `json:"pseudo_schemes"`
	Benchmarks    []string `json:"benchmarks"`
	// Clusters lists every cluster count job.ValidateClusters accepts (0
	// selects the paper's asymmetric two-cluster machine).
	Clusters []int `json:"clusters"`
	// DefaultParams are the balance constants used when a spec omits
	// params.
	DefaultParams steer.Params `json:"default_params"`
	// LeaseTTLMS and MaxLeaseWaitMS describe the queue's lease protocol
	// for workers.
	LeaseTTLMS     int64 `json:"lease_ttl_ms"`
	MaxLeaseWaitMS int64 `json:"max_lease_wait_ms"`
}

// handleCatalog reports the server's capabilities.
func (s *server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	clusters := make([]int, 0, config.MaxClusters+1)
	for n := 0; n <= config.MaxClusters; n++ {
		if job.ValidateClusters(n) == nil {
			clusters = append(clusters, n)
		}
	}
	writeJSON(w, http.StatusOK, catalogResponse{
		Schemes:        steer.Names(),
		PseudoSchemes:  []string{job.BaseScheme, job.UBScheme},
		Benchmarks:     workload.Names(),
		Clusters:       clusters,
		DefaultParams:  steer.DefaultParams(),
		LeaseTTLMS:     s.queue.LeaseTTL().Milliseconds(),
		MaxLeaseWaitMS: maxLeaseWait.Milliseconds(),
	})
}

// handleJob runs one cell: plan the spec, consult the store, simulate on
// a miss (coalescing with any identical in-flight submission).
func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	var sub jobSubmission
	if err := json.NewDecoder(r.Body).Decode(&sub); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed job spec: %w", err))
		return
	}
	j, err := sub.Spec.Plan()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Enter the bounded waiting room first: when even the line is full,
	// shed the request now with 429 + Retry-After instead of parking an
	// unbounded herd on the semaphore.
	select {
	case s.admit <- struct{}{}:
	default:
		s.metrics.admissionRejected.Inc()
		writeRetryAfter(w, time.Second)
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("admission queue full (%d requests admitted or waiting)", cap(s.admit)))
		return
	}
	defer func() { <-s.admit }()
	// Acquire a simulation slot (callers can give up while queued; store
	// hits inside the runner still pay the queue, which is what keeps a
	// thundering herd of distinct expensive jobs bounded).
	select {
	case s.sem <- struct{}{}:
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable, r.Context().Err())
		return
	}
	var (
		run    *stats.Run
		rep    *probe.Report
		cached bool
	)
	if sub.Probe {
		// A probed submission always simulates — attribution needs a live
		// machine, and the store holds results only. The result is
		// bit-identical to an unprobed run's (the probe layer's passivity
		// contract), so it feeds the digest-addressed store exactly like a
		// cache miss would; attribution rides the response and is never
		// stored.
		run, rep, err = job.RunWithAttribution(r.Context(), j)
		if err == nil {
			s.metrics.probeRuns.Inc()
			for _, b := range rep.Buckets {
				if b.Cycles > 0 {
					s.metrics.probeStallCycles.With(b.Class).Add(float64(b.Cycles))
				}
			}
			if perr := s.st.Put(j.Key(), run); perr != nil {
				logf("dcaserve: store probed result %s: %v", j.Key(), perr)
			}
		}
	} else {
		var outcome store.Outcome
		run, outcome, err = s.runner.RunWithOutcome(r.Context(), j)
		cached = outcome == store.OutcomeHit
	}
	<-s.sem
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, jobResponse{
		Key:          j.Key(),
		Cached:       cached,
		ElapsedMS:    float64(time.Since(started).Microseconds()) / 1e3,
		Result:       run,
		ResultDigest: job.ResultDigest(run),
		Attribution:  rep,
	})
}

// gridEvent is one NDJSON line of a /v1/grids response: progress events
// while the grid runs, then a final result (or error) event. The progress
// counters live in a pointer sub-struct rather than omitempty scalars:
// legitimate zeros (remaining_ms of 0 on the first cell before an ETA
// exists) must reach the wire, and presence-of-progress is signaled by the
// sub-object, not by which fields survived omitempty.
type gridEvent struct {
	Type string `json:"type"` // "progress" | "result" | "error"
	// Progress payload, set on "progress" events only.
	Progress *gridProgress `json:"progress,omitempty"`
	// Result payload.
	Grid *experiments.Export `json:"grid,omitempty"`
	// Error payload.
	Error string `json:"error,omitempty"`
}

// gridProgress is one completed cell's progress snapshot. No omitempty on
// any field: a zero is data here ("completed":0 never occurs, but
// "remaining_ms":0 does, on every first event).
type gridProgress struct {
	Scheme      string  `json:"scheme"`
	Benchmark   string  `json:"benchmark"`
	Completed   int     `json:"completed"`
	Total       int     `json:"total"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	RemainingMS float64 `json:"remaining_ms"`
}

// handleGrid runs a whole scheme × benchmark batch and streams progress:
// the response is NDJSON — one "progress" event per completed cell as it
// lands, then one "result" event carrying the full grid export (jobs,
// digests, per-cell stats). The base pseudo-scheme is always included,
// mirroring the experiments engine.
func (s *server) handleGrid(w http.ResponseWriter, r *http.Request) {
	var spec job.GridSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed grid spec: %w", err))
		return
	}
	// Validate through the shared job validator, so this entry point
	// rejects bad windows with the same error text as every other.
	if err := job.ValidateMeasure(spec.Measure); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Validate up front, while the status code is still writable — once
	// the stream starts, failures degrade to in-stream error events.
	if err := job.ValidateInputs(spec.Schemes, spec.EffectiveBenchmarks(), spec.Clusters); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	params := steer.DefaultParams()
	if spec.Params != nil {
		params = *spec.Params
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	stream := newNDJSONStream(w)
	emit := func(ev gridEvent) { stream.emit(ev) }

	opts := experiments.Options{
		Warmup:      spec.Warmup,
		Measure:     spec.Measure,
		Benchmarks:  spec.Benchmarks,
		Clusters:    spec.Clusters,
		Params:      params,
		Parallelism: s.parallelism,
		// Grid workers share the server-wide simulation semaphore, so K
		// concurrent grid requests still run at most `parallelism` cells
		// in total instead of K pools of that size each.
		Runner: semRunner{sem: s.sem, next: s.runner},
		Progress: func(p experiments.Progress) {
			emit(gridEvent{
				Type: "progress",
				Progress: &gridProgress{
					Scheme:      p.Cell.Scheme,
					Benchmark:   p.Cell.Benchmark,
					Completed:   p.Completed,
					Total:       p.Total,
					ElapsedMS:   float64(p.Elapsed.Microseconds()) / 1e3,
					RemainingMS: float64(p.Remaining.Microseconds()) / 1e3,
				},
			})
		},
	}
	res, err := experiments.RunContext(r.Context(), spec.Schemes, opts)
	if err != nil {
		emit(gridEvent{Type: "error", Error: err.Error()})
		return
	}
	export, err := res.Export()
	if err != nil {
		emit(gridEvent{Type: "error", Error: err.Error()})
		return
	}
	emit(gridEvent{Type: "result", Grid: export})
}

// semRunner gates a runner behind the server's simulation semaphore.
type semRunner struct {
	sem  chan struct{}
	next job.Runner
}

// Run implements job.Runner.
func (s semRunner) Run(ctx context.Context, j job.Job) (*stats.Run, error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-s.sem }()
	return s.next.Run(ctx, j)
}

// validKey matches job content digests (hex SHA-256). Anything else is an
// unknown result by definition — mapped to 404 up front so a malformed
// key never reaches a backend that might report it as a store failure.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handleResult serves a stored result by content digest.
func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		writeError(w, http.StatusNotFound, fmt.Errorf("no result for key %s (keys are hex sha-256 digests)", key))
		return
	}
	run, ok, err := s.st.Get(key)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no result for key %s", key))
		return
	}
	writeJSON(w, http.StatusOK, jobResponse{
		Key:          key,
		Cached:       true,
		Result:       run,
		ResultDigest: job.ResultDigest(run),
	})
}
