package main

// Regression tests for the production-hardening layer: handler validation
// fixes (grid measure, lease batch size, progress wire shape, dead-stream
// handling), the /metrics endpoint, admission control, and /v1/watch.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/job"
	"repro/internal/job/queue"
	"repro/internal/job/store"
	"repro/internal/stats"
)

// captureLogs swaps the logf seam for a collector for one test.
func captureLogs(t *testing.T) func() []string {
	t.Helper()
	var mu sync.Mutex
	var lines []string
	prev := logf
	logf = func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	t.Cleanup(func() { logf = prev })
	return func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), lines...)
	}
}

// gateRunner blocks each simulation until released, so tests can hold jobs
// in flight deterministically.
type gateRunner struct {
	entered chan string   // receives each job key as its simulation starts
	release chan struct{} // close to let every simulation finish
}

func newGateRunner() *gateRunner {
	return &gateRunner{entered: make(chan string, 16), release: make(chan struct{})}
}

func (g *gateRunner) Run(ctx context.Context, j job.Job) (*stats.Run, error) {
	g.entered <- j.Key()
	select {
	case <-g.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return job.Direct{}.Run(ctx, j)
}

// TestGridValidatesMeasureLikeJobs: the grid endpoint must reject bad
// measurement windows through the same validator as every other entry
// point — identical error text, 400 before the stream starts. (A negative
// measure cannot even decode into the uint64 field: that is the
// "malformed" case, also a 400.)
func TestGridValidatesMeasureLikeJobs(t *testing.T) {
	ts, counting := newTestServer(t)
	for _, tc := range []struct{ name, body, wantErr string }{
		{"zero measure", `{"schemes":["modulo"],"warmup":100,"measure":0}`, job.ValidateMeasure(0).Error()},
		{"no window", `{"schemes":["modulo"]}`, job.ValidateMeasure(0).Error()},
		{"negative measure", `{"schemes":["modulo"],"measure":-5}`, "malformed grid spec"},
		{"negative warmup", `{"schemes":["modulo"],"warmup":-1,"measure":100}`, "malformed grid spec"},
	} {
		resp, err := http.Post(ts.URL+"/v1/grids", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var er errorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
		if !strings.Contains(er.Error, tc.wantErr) {
			t.Errorf("%s: error %q does not carry %q", tc.name, er.Error, tc.wantErr)
		}
	}
	if n := counting.count(); n != 0 {
		t.Errorf("%d simulations ran for rejected grids, want 0", n)
	}
}

// TestLeaseRejectsNonPositiveMaxJobs: a zero or negative batch would
// long-poll to return nothing by construction — it must 400 immediately,
// while an over-large batch is capped, not refused.
func TestLeaseRejectsNonPositiveMaxJobs(t *testing.T) {
	ts := newQueueTestServer(t, queue.Options{})
	for _, maxJobs := range []int{0, -3} {
		start := time.Now()
		resp, err := http.Post(ts.URL+"/v1/leases", "application/json",
			strings.NewReader(fmt.Sprintf(`{"max_jobs":%d,"wait_ms":25000}`, maxJobs)))
		if err != nil {
			t.Fatal(err)
		}
		var er errorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("max_jobs=%d: status = %d, want 400", maxJobs, resp.StatusCode)
		}
		if !strings.Contains(er.Error, "max_jobs must be positive") {
			t.Errorf("max_jobs=%d: error %q", maxJobs, er.Error)
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Errorf("max_jobs=%d: rejection took %v — it long-polled instead of failing fast", maxJobs, d)
		}
	}

	// Above the cap still works: the server trims the batch server-side.
	var lr queue.LeaseResponse
	if code := postJSON(t, ts.URL+"/v1/leases", queue.LeaseRequest{MaxJobs: 10 * maxLeaseBatch}, &lr); code != http.StatusOK {
		t.Fatalf("oversized max_jobs: status %d, want 200", code)
	}
}

// TestFirstProgressEventWireShape: progress counters must survive to the
// wire even when zero. The first progress event always has remaining_ms=0
// (no timing data yet) — exactly the value the old omitempty tags dropped.
func TestFirstProgressEventWireShape(t *testing.T) {
	ts, _ := newTestServer(t)
	body := `{"schemes":["modulo"],"benchmarks":["go"],"warmup":100,"measure":1000}`
	resp, err := http.Post(ts.URL+"/v1/grids", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	first := true
	for sc.Scan() {
		var raw map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &raw); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		var evType string
		json.Unmarshal(raw["type"], &evType)
		if evType != "progress" {
			continue
		}
		var progress map[string]json.RawMessage
		if err := json.Unmarshal(raw["progress"], &progress); err != nil {
			t.Fatalf("progress event without object payload: %s", sc.Text())
		}
		for _, field := range []string{"scheme", "benchmark", "completed", "total", "elapsed_ms", "remaining_ms"} {
			if _, ok := progress[field]; !ok {
				t.Errorf("progress event missing %q on the wire: %s", field, sc.Text())
			}
		}
		if first {
			first = false
			if string(progress["remaining_ms"]) != "0" {
				t.Errorf("first progress event remaining_ms = %s, want the literal 0", progress["remaining_ms"])
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if first {
		t.Fatal("no progress events seen")
	}
}

// hangupWriter simulates a client that disconnects mid-stream: the first
// failAfter Write calls succeed, every later one fails like a dead socket.
// Write attempts after the first failure are counted — a correct stream
// stops emitting, so that count must stay zero.
type hangupWriter struct {
	mu                sync.Mutex
	header            http.Header
	failAfter         int
	writes            int
	failed            bool
	attemptsAfterFail int
}

func (h *hangupWriter) Header() http.Header { return h.header }
func (h *hangupWriter) WriteHeader(int)     {}
func (h *hangupWriter) Write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.failed {
		h.attemptsAfterFail++
		return 0, io.ErrClosedPipe
	}
	if h.writes >= h.failAfter {
		h.failed = true
		return 0, io.ErrClosedPipe
	}
	h.writes++
	return len(p), nil
}

// TestGridStreamStopsOnClientHangup: when the connection dies mid-stream,
// the first failed emit must be logged and every later event dropped — one
// log line and zero further writes, not one failure per remaining cell.
// (A real TCP hangup also cancels r.Context() and aborts the grid, but
// whether the first or second post-hangup write notices the dead socket is
// RST-timing dependent, so the contract is pinned at the writer seam.)
func TestGridStreamStopsOnClientHangup(t *testing.T) {
	logs := captureLogs(t)
	srv := newServer(store.NewMemory(0), nil, 2, queue.Options{}, limits{})
	w := &hangupWriter{header: http.Header{}, failAfter: 1}
	body := `{"schemes":["modulo"],"benchmarks":["go","compress"],"warmup":100,"measure":1000}`
	srv.handleGrid(w, httptest.NewRequest(http.MethodPost, "/v1/grids", strings.NewReader(body)))

	count := 0
	for _, line := range logs() {
		if strings.Contains(line, "write stream event") {
			count++
		}
	}
	if count != 1 {
		t.Errorf("%d dead-stream log lines, want exactly 1 (log first failure only)", count)
	}
	if w.attemptsAfterFail != 0 {
		t.Errorf("%d writes attempted after the stream died, want 0 (stop emitting)", w.attemptsAfterFail)
	}
	if w.writes != w.failAfter {
		t.Errorf("%d successful writes, want %d", w.writes, w.failAfter)
	}
}

// scrape fetches /metrics and parses every sample line (labels included in
// the key) into a map.
func scrape(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Errorf("metrics Content-Type = %q, want text exposition 0.0.4", ct)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("malformed metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("malformed metrics value in %q: %v", line, err)
		}
		out[line[:idx]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsScrape drives a known traffic pattern and asserts every
// advertised counter family moves: store hit/miss/coalesced, queue
// depth/inflight/retries/late completions/expiries, and the per-endpoint
// HTTP histograms.
func TestMetricsScrape(t *testing.T) {
	gate := newGateRunner()
	srv := newServer(store.NewMemory(0), gate, 2, queue.Options{
		LeaseTTL:    50 * time.Millisecond,
		MaxAttempts: 3,
	}, limits{})
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	// Store traffic: a miss, a hit, and a coalesced pair.
	close(gate.release) // first jobs run gate-free
	if _, code := postJobTo(t, ts, `{"scheme":"modulo","benchmark":"go","warmup":100,"measure":1000}`); code != 200 {
		t.Fatalf("cold job: %d", code)
	}
	if _, code := postJobTo(t, ts, `{"scheme":"modulo","benchmark":"go","warmup":100,"measure":1000}`); code != 200 {
		t.Fatalf("warm job: %d", code)
	}
	gate.release = make(chan struct{}) // re-arm the gate for the coalesced pair
	coalesceSpec := `{"scheme":"modulo","benchmark":"go","warmup":777,"measure":1000}`
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			postJobTo(t, ts, coalesceSpec)
		}()
	}
	<-gate.entered // the first is simulating; the second must coalesce
	time.Sleep(50 * time.Millisecond)
	close(gate.release)
	wg.Wait()

	// Queue traffic: two cells; one lease that expires (retry), a late
	// completion under the stale lease, and a nack.
	var qr queueResponse
	if code := postJSON(t, ts.URL+"/v1/queue", map[string]any{"grid": map[string]any{
		"schemes": []string{"fifo"}, "benchmarks": []string{"go", "compress"},
		"warmup": 100, "measure": 1000,
	}}, &qr); code != http.StatusAccepted {
		t.Fatalf("enqueue: %d", code)
	}
	if qr.Queued != 2 {
		t.Fatalf("queued %d, want 2", qr.Queued)
	}
	depthScrape := scrape(t, ts)

	var lease1 queue.LeaseResponse
	if code := postJSON(t, ts.URL+"/v1/leases", queue.LeaseRequest{MaxJobs: 1}, &lease1); code != 200 || len(lease1.Leases) != 1 {
		t.Fatalf("first lease: %d (%d leases)", code, len(lease1.Leases))
	}
	inflightScrape := scrape(t, ts)
	time.Sleep(120 * time.Millisecond) // past the 50ms TTL: the lease expires and the job requeues

	var lease2 queue.LeaseResponse
	if code := postJSON(t, ts.URL+"/v1/leases", queue.LeaseRequest{MaxJobs: 2, WaitMS: 5000}, &lease2); code != 200 || len(lease2.Leases) == 0 {
		t.Fatalf("second lease: %d (%d leases)", code, len(lease2.Leases))
	}
	// Complete the expired job under its ORIGINAL lease: a late completion.
	stale := lease1.Leases[0]
	run, err := job.Direct{}.Run(context.Background(), stale.Job)
	if err != nil {
		t.Fatal(err)
	}
	if code := postJSON(t, ts.URL+"/v1/leases/"+stale.ID+"/complete", queue.CompleteRequest{
		Key: stale.Key, Result: run, ResultDigest: job.ResultDigest(run),
	}, nil); code != 200 {
		t.Fatalf("late complete: %d", code)
	}
	// Nack one live lease on the other cell.
	for _, l := range lease2.Leases {
		if l.Key != stale.Key {
			if code := postJSON(t, ts.URL+"/v1/leases/"+l.ID+"/complete", queue.CompleteRequest{
				Key: l.Key, Error: "synthetic failure",
			}, nil); code != 200 {
				t.Fatalf("nack: %d", code)
			}
		}
	}

	m := scrape(t, ts)
	for name, min := range map[string]float64{
		"dcaserve_store_hits_total":           1,
		"dcaserve_store_misses_total":         2, // cold job + coalesce leader
		"dcaserve_store_coalesced_total":      1,
		"dcaserve_queue_enqueued_total":       2,
		"dcaserve_queue_leased_total":         2,
		"dcaserve_queue_expired_total":        1,
		"dcaserve_queue_retried_total":        1,
		"dcaserve_queue_late_completed_total": 1,
		"dcaserve_queue_nacked_total":         1,
		"dcaserve_store_results":              3,
	} {
		if m[name] < min {
			t.Errorf("%s = %v, want >= %v", name, m[name], min)
		}
	}
	if v := depthScrape["dcaserve_queue_depth"]; v < 2 {
		t.Errorf("dcaserve_queue_depth after enqueue = %v, want >= 2", v)
	}
	if v := inflightScrape["dcaserve_queue_inflight"]; v < 1 {
		t.Errorf("dcaserve_queue_inflight under lease = %v, want >= 1", v)
	}
	// Per-endpoint HTTP families, labeled by route pattern.
	if v := m[`http_requests_total{endpoint="POST /v1/jobs",code="200"}`]; v < 4 {
		t.Errorf("http_requests_total for POST /v1/jobs = %v, want >= 4", v)
	}
	if v := m[`http_request_seconds_count{endpoint="POST /v1/jobs"}`]; v < 4 {
		t.Errorf("http_request_seconds_count for POST /v1/jobs = %v, want >= 4", v)
	}
	if v := m[`http_request_seconds_bucket{endpoint="POST /v1/jobs",le="+Inf"}`]; v < 4 {
		t.Errorf("latency histogram buckets missing for POST /v1/jobs (got %v)", v)
	}
}

// postJobTo is postJob against an explicit server (the shared helper binds
// to newTestServer's).
func postJobTo(t *testing.T, ts *httptest.Server, body string) (jobResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr jobResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return jr, resp.StatusCode
}

// TestRateLimiterShedsPerClient: the token bucket must 429 a client past
// its burst, carry Retry-After, and meter clients independently.
func TestRateLimiterShedsPerClient(t *testing.T) {
	srv := newServer(store.NewMemory(0), nil, 2, queue.Options{},
		limits{Rate: 0.5, Burst: 2})
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	post := func(clientID string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(tinySpec))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Client-ID", clientID)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	for i := 0; i < 2; i++ {
		if resp := post("client-a"); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d within burst: status %d", i+1, resp.StatusCode)
		}
	}
	resp := post("client-a")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst request: status %d, want 429", resp.StatusCode)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Errorf("Retry-After = %q, want a positive integer of seconds", resp.Header.Get("Retry-After"))
	}
	// A different client has its own bucket.
	if resp := post("client-b"); resp.StatusCode != http.StatusOK {
		t.Errorf("fresh client throttled: status %d", resp.StatusCode)
	}
	// GET endpoints are not throttled — observability must stay reachable
	// for a client that just got shed.
	hr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Errorf("metrics throttled: status %d", hr.StatusCode)
	}
}

// TestAdmissionQueueBounds: with the simulator full and the waiting room
// full, the next job is refused with 429 + Retry-After instead of queueing
// without bound.
func TestAdmissionQueueBounds(t *testing.T) {
	gate := newGateRunner()
	srv := newServer(store.NewMemory(0), gate, 1, queue.Options{}, limits{AdmitQueue: 1})
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	spec := func(i int) string {
		return fmt.Sprintf(`{"scheme":"modulo","benchmark":"go","warmup":%d,"measure":1000}`, 100+i)
	}
	results := make(chan int, 2)
	// First job occupies the one simulation slot...
	go func() { _, code := postJobTo(t, ts, spec(0)); results <- code }()
	<-gate.entered
	// ...second job fills the one waiting-room slot...
	go func() { _, code := postJobTo(t, ts, spec(1)); results <- code }()
	waitForAdmitFull(t, srv)
	// ...so the third is shed immediately.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(spec(2)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow job: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("admission 429 without Retry-After")
	}

	close(gate.release)
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Errorf("admitted job finished with %d, want 200", code)
		}
	}
	m := scrape(t, ts)
	if m["dcaserve_admission_rejected_total"] < 1 {
		t.Errorf("dcaserve_admission_rejected_total = %v, want >= 1", m["dcaserve_admission_rejected_total"])
	}
}

// waitForAdmitFull polls until the server's admission room has no free
// slot (both capacity-consuming requests are inside).
func waitForAdmitFull(t *testing.T, srv *server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.admit) < cap(srv.admit) {
		if time.Now().After(deadline) {
			t.Fatalf("admission room never filled (%d/%d)", len(srv.admit), cap(srv.admit))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// watchLine is one decoded /v1/watch NDJSON event.
func readWatch(t *testing.T, sc *bufio.Scanner, lines chan<- watchEvent) {
	for sc.Scan() {
		var ev watchEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Errorf("bad watch line %q: %v", sc.Text(), err)
			return
		}
		lines <- ev
	}
	close(lines)
}

// TestWatchEndToEnd: a watch over three keys — one already cached, one
// completed by a (simulated) worker upload, one failing terminally — must
// stream done/done/failed and then the summary, without the client ever
// polling /v1/results.
func TestWatchEndToEnd(t *testing.T) {
	srv := newServer(store.NewMemory(0), nil, 2, queue.Options{MaxAttempts: 1}, limits{})
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	// Key 1: already in the store before the watch starts.
	cached, code := postJobTo(t, ts, tinySpec)
	if code != 200 {
		t.Fatalf("seed job: %d", code)
	}
	// Keys 2 and 3: queued for workers.
	var qr queueResponse
	if code := postJSON(t, ts.URL+"/v1/queue", map[string]any{"grid": map[string]any{
		"schemes": []string{"fifo"}, "benchmarks": []string{"go", "compress"},
		"warmup": 100, "measure": 1000,
	}}, &qr); code != http.StatusAccepted || len(qr.Jobs) != 2 {
		t.Fatalf("enqueue: %d (%d jobs)", code, len(qr.Jobs))
	}

	keys := []string{cached.Key, qr.Jobs[0].Key, qr.Jobs[1].Key}
	resp, err := http.Get(ts.URL + "/v1/watch?keys=" + strings.Join(keys, ","))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("watch Content-Type = %q", ct)
	}
	lines := make(chan watchEvent, 8)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	go readWatch(t, sc, lines)
	next := func(what string) watchEvent {
		t.Helper()
		select {
		case ev, ok := <-lines:
			if !ok {
				t.Fatalf("watch stream ended waiting for %s", what)
			}
			return ev
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for %s", what)
		}
		panic("unreachable")
	}

	// The cached key settles from the initial sweep, before any queue work.
	if ev := next("initial done event"); ev.Type != "done" || ev.Key != cached.Key {
		t.Fatalf("first event = %+v, want done %s", ev, cached.Key)
	}

	// Worker protocol: lease both, upload one, nack the other (MaxAttempts
	// 1 makes the nack terminal).
	var lr queue.LeaseResponse
	if code := postJSON(t, ts.URL+"/v1/leases", queue.LeaseRequest{MaxJobs: 2}, &lr); code != 200 || len(lr.Leases) != 2 {
		t.Fatalf("lease: %d (%d)", code, len(lr.Leases))
	}
	done, failed := lr.Leases[0], lr.Leases[1]
	run, err := job.Direct{}.Run(context.Background(), done.Job)
	if err != nil {
		t.Fatal(err)
	}
	if code := postJSON(t, ts.URL+"/v1/leases/"+done.ID+"/complete", queue.CompleteRequest{
		Key: done.Key, Result: run, ResultDigest: job.ResultDigest(run),
	}, nil); code != 200 {
		t.Fatalf("complete: %d", code)
	}
	if ev := next("worker-upload done event"); ev.Type != "done" || ev.Key != done.Key {
		t.Fatalf("upload event = %+v, want done %s", ev, done.Key)
	}
	if code := postJSON(t, ts.URL+"/v1/leases/"+failed.ID+"/complete", queue.CompleteRequest{
		Key: failed.Key, Error: "deliberate failure",
	}, nil); code != 200 {
		t.Fatalf("nack: %d", code)
	}
	if ev := next("failed event"); ev.Type != "failed" || ev.Key != failed.Key || !strings.Contains(ev.Error, "deliberate failure") {
		t.Fatalf("failure event = %+v, want failed %s with the nack reason", ev, failed.Key)
	}
	sum := next("summary")
	if sum.Type != "complete" || sum.Summary == nil || sum.Summary.Done != 2 || sum.Summary.Failed != 1 {
		t.Fatalf("summary = %+v, want complete with done=2 failed=1", sum)
	}
	if _, ok := <-lines; ok {
		t.Error("events after the summary")
	}
}

// TestWatchRejectsBadKeys: the subscription validates its keys up front.
func TestWatchRejectsBadKeys(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, tc := range []struct{ name, query string }{
		{"no keys", ""},
		{"malformed key", "?keys=zzz"},
	} {
		resp, err := http.Get(ts.URL + "/v1/watch" + tc.query)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
}
