package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/job"
	"repro/internal/job/queue"
)

// This file is the distributed half of the v1 API: asynchronous enqueue
// plus the worker-facing lease protocol. The synchronous endpoints
// (server.go) simulate in-process; these hand the same canonical jobs to a
// dcaworker fleet through internal/job/queue, with results landing in the
// same content-addressed store — so /v1/results serves both worlds and a
// worker completing key K satisfies every queued and future request for K.

// maxLeaseWait caps a single long-poll so clients behind proxies with
// short idle timeouts still get a well-formed (empty) response.
const maxLeaseWait = 30 * time.Second

// maxLeaseBatch caps max_jobs per lease request: big enough to amortize
// polling on tiny cells, small enough that one worker cannot drain the
// whole queue into leases it may then lose.
const maxLeaseBatch = 64

// queueRequest is the body of POST /v1/queue: exactly one of Spec (one
// cell) or Grid (a whole batch).
type queueRequest struct {
	Spec *job.Spec     `json:"spec,omitempty"`
	Grid *job.GridSpec `json:"grid,omitempty"`
}

// queueResponse reports every submitted job's key and disposition, plus
// roll-up counts so clients need not tally the slice.
type queueResponse struct {
	Jobs   []queue.Enqueued `json:"jobs"`
	Queued int              `json:"queued"`
	// Duplicate counts jobs already queued or leased; Cached counts jobs
	// whose results were already stored. Neither kind will simulate again.
	Duplicate int `json:"duplicate"`
	Cached    int `json:"cached"`
}

// handleQueue enqueues a spec or grid and returns the content keys
// immediately; clients poll GET /v1/results/{key} (or watch
// /v1/queue/stats) while a dcaworker fleet drains the queue.
//
// Unlike the synchronous /v1/grids — which mirrors the experiments
// engine and always adds the base pseudo-scheme for speed-up
// normalization — the queue runs EXACTLY the cells submitted: list
// "base" explicitly when the comparison needs it.
func (s *server) handleQueue(w http.ResponseWriter, r *http.Request) {
	var req queueRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed queue request: %w", err))
		return
	}
	var jobs []job.Job
	switch {
	case req.Spec != nil && req.Grid != nil:
		writeError(w, http.StatusBadRequest, fmt.Errorf("queue request carries both spec and grid; send one"))
		return
	case req.Spec != nil:
		j, err := req.Spec.Plan()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		jobs = []job.Job{j}
	case req.Grid != nil:
		planned, err := req.Grid.Plan()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		jobs = planned
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("queue request carries neither spec nor grid"))
		return
	}

	resp := queueResponse{Jobs: s.queue.Enqueue(jobs)}
	for _, e := range resp.Jobs {
		switch e.Status {
		case queue.StatusQueued:
			resp.Queued++
		case queue.StatusDuplicate:
			resp.Duplicate++
		case queue.StatusCached:
			resp.Cached++
		}
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// handleLease hands a worker up to max_jobs pending jobs. The wire types
// (queue.LeaseRequest/LeaseResponse/CompleteRequest) live in the queue
// package, shared with internal/job/worker's client.
func (s *server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req queue.LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed lease request: %w", err))
		return
	}
	// A non-positive batch is a client bug, not a preference: it would
	// long-poll the full wait to return nothing by construction. Reject it
	// while the caller can still see why; cap the top end server-side.
	if req.MaxJobs <= 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("max_jobs must be positive, got %d", req.MaxJobs))
		return
	}
	if req.MaxJobs > maxLeaseBatch {
		req.MaxJobs = maxLeaseBatch
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if wait > maxLeaseWait {
		wait = maxLeaseWait
	}
	leases, err := s.queue.Lease(r.Context(), req.MaxJobs, wait)
	if err != nil {
		// Only the client hanging up ends a poll early; its context error
		// is unserializable anyway, so just drop the connection.
		return
	}
	if leases == nil {
		leases = []queue.Lease{}
	}
	writeJSON(w, http.StatusOK, queue.LeaseResponse{
		Leases:     leases,
		LeaseTTLMS: s.queue.LeaseTTL().Milliseconds(),
	})
}

// handleComplete settles one lease.
func (s *server) handleComplete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req queue.CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed completion: %w", err))
		return
	}
	if req.Error != "" {
		if err := s.queue.Nack(id, req.Error); err != nil {
			writeError(w, queueStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "nacked"})
		return
	}
	if req.Result == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("completion carries neither result nor error"))
		return
	}
	if err := s.queue.Complete(id, req.Key, req.Result, req.ResultDigest); err != nil {
		writeError(w, queueStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "completed", "key": req.Key})
}

// handleExtend heartbeats one lease, returning the new deadline.
func (s *server) handleExtend(w http.ResponseWriter, r *http.Request) {
	deadline, err := s.queue.Extend(r.PathValue("id"))
	if err != nil {
		writeError(w, queueStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deadline": deadline})
}

// handleQueueStats reports the queue's depth/inflight/retry counters.
func (s *server) handleQueueStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.queue.Stats())
}

// queueStatus maps queue errors to HTTP statuses: a lost lease is a
// conflict the worker resolves by abandoning the job, a corrupt upload
// and an unknown job are the uploader's fault.
func queueStatus(err error) int {
	switch {
	case errors.Is(err, queue.ErrUnknownLease):
		return http.StatusConflict
	case errors.Is(err, queue.ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, queue.ErrDigestMismatch):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}
