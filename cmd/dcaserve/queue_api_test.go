package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/job"
	"repro/internal/job/queue"
	"repro/internal/job/store"
	"repro/internal/job/worker"
	"repro/internal/stats"
	"repro/internal/steer"
	"repro/internal/workload"
)

// newQueueTestServer boots a server with queue tuning under test control.
func newQueueTestServer(t *testing.T, qopts queue.Options) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newServer(store.NewMemory(0), nil, 2, qopts, limits{}).handler())
	t.Cleanup(ts.Close)
	return ts
}

// postJSON posts v and decodes the response into out (when non-nil),
// returning the status code.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// getJSON fetches url into out, returning the status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// countingWorkerRunner counts per-key simulations on the worker side.
type countingWorkerRunner struct {
	mu    sync.Mutex
	calls map[string]int
	next  job.Runner
}

func newCountingWorkerRunner() *countingWorkerRunner {
	return &countingWorkerRunner{calls: map[string]int{}, next: job.Direct{}}
}

func (c *countingWorkerRunner) Run(ctx context.Context, j job.Job) (*stats.Run, error) {
	c.mu.Lock()
	c.calls[j.Key()]++
	c.mu.Unlock()
	return c.next.Run(ctx, j)
}

func (c *countingWorkerRunner) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.calls {
		n += v
	}
	return n
}

// drainQueue polls /v1/queue/stats until the queue is empty (nothing
// pending, leased or failed) or the deadline passes.
func drainQueue(t *testing.T, ts *httptest.Server, timeout time.Duration) queue.Stats {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var s queue.Stats
		if code := getJSON(t, ts.URL+"/v1/queue/stats", &s); code != http.StatusOK {
			t.Fatalf("queue stats: status %d", code)
		}
		if s.Depth == 0 && s.Inflight == 0 {
			return s
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue did not drain: %+v", s)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestQueueGoldenGridEndToEnd is the distributed-correctness lock (the
// PR's acceptance test): the full golden grid — every scheme plus both
// pseudo-machines × two benchmarks — is enqueued once, enqueued AGAIN as
// a duplicate, and drained by two concurrent worker fleets over real
// HTTP. Every result must be byte-identical (same ResultDigest) to the
// in-process engine's, and the duplicate submission must not cost a
// single extra simulation.
func TestQueueGoldenGridEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden grid in -short mode")
	}
	names := steer.Names()
	sort.Strings(names)
	grid := job.GridSpec{
		Schemes:    append([]string{job.BaseScheme, job.UBScheme}, names...),
		Benchmarks: []string{"go", "compress"},
		Warmup:     5_000,
		Measure:    25_000,
	}

	// In-process reference: the same grid through job.RunAll + Direct.
	jobs, err := grid.Plan()
	if err != nil {
		t.Fatal(err)
	}
	runs, err := job.RunAll(context.Background(), jobs, job.PoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]string, len(jobs)) // key -> result digest
	for i, j := range jobs {
		want[j.Key()] = job.ResultDigest(runs[i])
	}

	ts := newQueueTestServer(t, queue.Options{})

	var qr queueResponse
	if code := postJSON(t, ts.URL+"/v1/queue", queueRequest{Grid: &grid}, &qr); code != http.StatusAccepted {
		t.Fatalf("enqueue: status %d, want 202", code)
	}
	if qr.Queued != len(jobs) || qr.Duplicate != 0 || qr.Cached != 0 {
		t.Fatalf("enqueue = %d queued / %d dup / %d cached, want %d/0/0",
			qr.Queued, qr.Duplicate, qr.Cached, len(jobs))
	}
	// The duplicate submission: every job must dedup against the queue
	// (or the store, if a worker already finished it).
	var dup queueResponse
	postJSON(t, ts.URL+"/v1/queue", queueRequest{Grid: &grid}, &dup)
	if dup.Queued != 0 || dup.Duplicate+dup.Cached != len(jobs) {
		t.Fatalf("duplicate enqueue = %d queued / %d dup / %d cached, want 0 queued",
			dup.Queued, dup.Duplicate, dup.Cached)
	}

	// Two worker "processes" (fleets), two pull loops each, drain it.
	counting := newCountingWorkerRunner()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		f, err := worker.New(worker.Options{
			Server:  ts.URL,
			Loops:   2,
			MaxJobs: 2,
			Wait:    200 * time.Millisecond,
			Runner:  counting,
			Logf:    t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = f.Run(ctx)
		}()
	}

	qs := drainQueue(t, ts, 3*time.Minute)
	cancel()
	wg.Wait()

	if qs.Failed != 0 || qs.Exhausted != 0 {
		t.Fatalf("queue reports failures: %+v", qs)
	}
	if got := qs.Completed + qs.LateCompleted; got != uint64(len(jobs)) {
		t.Errorf("completions = %d, want %d", got, len(jobs))
	}

	// Every key must now be served, byte-identical to the in-process run.
	for key, digest := range want {
		var jr jobResponse
		if code := getJSON(t, ts.URL+"/v1/results/"+key, &jr); code != http.StatusOK {
			t.Fatalf("result %s: status %d", key, code)
		}
		if jr.ResultDigest != digest {
			t.Errorf("key %s: worker digest %s != in-process digest %s", key, jr.ResultDigest, digest)
		}
		if jr.Result == nil || job.ResultDigest(jr.Result) != digest {
			t.Errorf("key %s: served result does not re-digest to %s", key, digest)
		}
	}

	// Exactly-once: the duplicate grid cost nothing.
	if n := counting.total(); n != len(jobs) {
		t.Errorf("%d worker simulations, want exactly %d", n, len(jobs))
	}
}

// flakyRunner fails every job's first attempt (exercising nack → requeue)
// and succeeds afterwards.
type flakyRunner struct {
	mu    sync.Mutex
	tried map[string]bool
	calls map[string]int
}

func newFlakyRunner() *flakyRunner {
	return &flakyRunner{tried: map[string]bool{}, calls: map[string]int{}}
}

func (f *flakyRunner) Run(ctx context.Context, j job.Job) (*stats.Run, error) {
	key := j.Key()
	f.mu.Lock()
	f.calls[key]++
	first := !f.tried[key]
	f.tried[key] = true
	f.mu.Unlock()
	if first {
		return nil, fmt.Errorf("injected first-attempt failure")
	}
	return job.Direct{}.Run(ctx, j)
}

// TestQueueFaultToleranceEndToEnd drains a grid under injected faults: a
// "crashed" worker that leases a job and never settles it (its lease must
// expire and requeue), a fleet whose runner fails every first attempt
// (nack → requeue), and a late upload from the crashed worker arriving
// after the job completed elsewhere (idempotent, never double-counted).
// Results must still be byte-identical to the in-process engine.
func TestQueueFaultToleranceEndToEnd(t *testing.T) {
	grid := job.GridSpec{
		Schemes:    []string{"modulo", "general"},
		Benchmarks: []string{"go", "compress"},
		Warmup:     100,
		Measure:    1_000,
	}
	jobs, err := grid.Plan()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for _, j := range jobs {
		r, err := job.Direct{}.Run(context.Background(), j)
		if err != nil {
			t.Fatal(err)
		}
		want[j.Key()] = job.ResultDigest(r)
	}

	// Short TTL so the crashed worker's lease lapses fast; a generous
	// attempt budget so expiry + injected first-attempt failures cannot
	// exhaust a job.
	ts := newQueueTestServer(t, queue.Options{LeaseTTL: 300 * time.Millisecond, MaxAttempts: 10})

	var qr queueResponse
	if code := postJSON(t, ts.URL+"/v1/queue", queueRequest{Grid: &grid}, &qr); code != http.StatusAccepted {
		t.Fatalf("enqueue: status %d", code)
	}

	// The crashed worker: leases one job over raw HTTP and goes silent.
	var lr queue.LeaseResponse
	if code := postJSON(t, ts.URL+"/v1/leases", queue.LeaseRequest{MaxJobs: 1}, &lr); code != http.StatusOK {
		t.Fatalf("crashed worker lease: status %d", code)
	}
	if len(lr.Leases) != 1 {
		t.Fatalf("crashed worker got %d leases, want 1", len(lr.Leases))
	}
	crashed := lr.Leases[0]

	// A real fleet with a flaky runner drains everything, the abandoned
	// job included once its lease expires.
	flaky := newFlakyRunner()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f, err := worker.New(worker.Options{
		Server:     ts.URL,
		Loops:      2,
		Wait:       100 * time.Millisecond,
		MaxBackoff: 200 * time.Millisecond,
		Runner:     flaky,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = f.Run(ctx) }()

	qs := drainQueue(t, ts, time.Minute)
	cancel()
	<-done

	if qs.Failed != 0 {
		t.Fatalf("jobs parked as failed under faults: %+v", qs)
	}
	if qs.Expired == 0 {
		t.Errorf("crashed worker's lease never expired: %+v", qs)
	}
	if qs.Nacked == 0 {
		t.Errorf("flaky runner's failures never nacked: %+v", qs)
	}

	// The crashed worker wakes up and uploads its job late — the upload
	// must be accepted (or be an idempotent no-op if already stored) and
	// must not disturb the stored result.
	r, err := job.Direct{}.Run(context.Background(), crashed.Job)
	if err != nil {
		t.Fatal(err)
	}
	code := postJSON(t, ts.URL+"/v1/leases/"+crashed.ID+"/complete",
		queue.CompleteRequest{Key: crashed.Key, Result: r, ResultDigest: job.ResultDigest(r)}, nil)
	if code != http.StatusOK {
		t.Errorf("late upload from crashed worker: status %d, want 200", code)
	}

	for key, digest := range want {
		var jr jobResponse
		if code := getJSON(t, ts.URL+"/v1/results/"+key, &jr); code != http.StatusOK {
			t.Fatalf("result %s: status %d", key, code)
		}
		if jr.ResultDigest != digest {
			t.Errorf("key %s: digest %s != in-process %s under faults", key, jr.ResultDigest, digest)
		}
	}
}

// TestQueueEndpointValidation checks malformed and invalid submissions
// fail fast with the job layer's error text, before anything enqueues.
func TestQueueEndpointValidation(t *testing.T) {
	ts := newQueueTestServer(t, queue.Options{})
	post := func(body string) (int, string) {
		resp, err := http.Post(ts.URL+"/v1/queue", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var er errorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		return resp.StatusCode, er.Error
	}
	for _, tc := range []struct{ name, body, wantErr string }{
		{"malformed", `{"spec":`, "malformed queue request"},
		{"neither", `{}`, "neither spec nor grid"},
		{"both", `{"spec":{"scheme":"modulo","benchmark":"go","measure":100},"grid":{"schemes":["modulo"],"measure":100}}`, "both spec and grid"},
		{"no window", `{"spec":{"scheme":"modulo","benchmark":"go"}}`, "measure must be positive"},
		{"bad scheme", `{"spec":{"scheme":"nope","benchmark":"go","measure":100}}`, job.ValidateScheme("nope").Error()},
		{"bad grid scheme", `{"grid":{"schemes":["nope"],"measure":100}}`, job.ValidateScheme("nope").Error()},
	} {
		code, msg := post(tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
		if !strings.Contains(msg, tc.wantErr) {
			t.Errorf("%s: error %q does not carry %q", tc.name, msg, tc.wantErr)
		}
	}

	// A valid single-spec enqueue is a 202 with one queued key.
	var qr queueResponse
	code := postJSON(t, ts.URL+"/v1/queue",
		queueRequest{Spec: &job.Spec{Scheme: "modulo", Benchmark: "go", Warmup: 10, Measure: 100}}, &qr)
	if code != http.StatusAccepted || len(qr.Jobs) != 1 || qr.Queued != 1 {
		t.Fatalf("spec enqueue = status %d, %+v", code, qr)
	}
	if len(qr.Jobs[0].Key) != 64 {
		t.Errorf("key %q is not a hex digest", qr.Jobs[0].Key)
	}
}

// TestQueueComposesWithSyncPath checks the two worlds share one store: a
// synchronous /v1/jobs simulation satisfies a later enqueue of the same
// cell as "cached", and a worker-completed queue job is served to a
// synchronous /v1/jobs submission without re-simulating.
func TestQueueComposesWithSyncPath(t *testing.T) {
	ts, counting := newTestServer(t)

	// Sync first: POST /v1/jobs simulates; the queue then dedups on it.
	if _, code := postJob(t, ts, tinySpec); code != http.StatusOK {
		t.Fatalf("sync job: status %d", code)
	}
	var qr queueResponse
	spec := job.Spec{Scheme: "general", Benchmark: "go", Warmup: 100, Measure: 1000}
	postJSON(t, ts.URL+"/v1/queue", queueRequest{Spec: &spec}, &qr)
	if qr.Cached != 1 {
		t.Fatalf("enqueue after sync run = %+v, want cached", qr)
	}

	// Queue first, a worker completes, then a sync submission hits.
	spec2 := job.Spec{Scheme: "modulo", Benchmark: "compress", Warmup: 100, Measure: 1000}
	var qr2 queueResponse
	postJSON(t, ts.URL+"/v1/queue", queueRequest{Spec: &spec2}, &qr2)
	var lr queue.LeaseResponse
	postJSON(t, ts.URL+"/v1/leases", queue.LeaseRequest{MaxJobs: 1}, &lr)
	if len(lr.Leases) != 1 {
		t.Fatalf("leased %d, want 1", len(lr.Leases))
	}
	l := lr.Leases[0]
	r, err := job.Direct{}.Run(context.Background(), l.Job)
	if err != nil {
		t.Fatal(err)
	}
	if code := postJSON(t, ts.URL+"/v1/leases/"+l.ID+"/complete",
		queue.CompleteRequest{Key: l.Key, Result: r, ResultDigest: job.ResultDigest(r)}, nil); code != http.StatusOK {
		t.Fatalf("complete: status %d", code)
	}
	before := counting.count()
	warm, code := postJob(t, ts, `{"scheme":"modulo","benchmark":"compress","warmup":100,"measure":1000}`)
	if code != http.StatusOK || !warm.Cached {
		t.Fatalf("sync submission after worker completion: status %d, cached %v", code, warm.Cached)
	}
	if counting.count() != before {
		t.Error("sync submission re-simulated a worker-completed job")
	}
}

// TestCompleteRejectsCorruptUpload checks the server-side digest
// verification: an upload whose claimed digest does not match the
// recomputation is a 400 and never enters the store.
func TestCompleteRejectsCorruptUpload(t *testing.T) {
	ts := newQueueTestServer(t, queue.Options{})
	spec := job.Spec{Scheme: "modulo", Benchmark: "go", Warmup: 10, Measure: 100}
	var qr queueResponse
	postJSON(t, ts.URL+"/v1/queue", queueRequest{Spec: &spec}, &qr)
	var lr queue.LeaseResponse
	postJSON(t, ts.URL+"/v1/leases", queue.LeaseRequest{MaxJobs: 1}, &lr)
	l := lr.Leases[0]

	r, err := job.Direct{}.Run(context.Background(), l.Job)
	if err != nil {
		t.Fatal(err)
	}
	code := postJSON(t, ts.URL+"/v1/leases/"+l.ID+"/complete",
		queue.CompleteRequest{Key: l.Key, Result: r, ResultDigest: strings.Repeat("0", 64)}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("corrupt upload: status %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/v1/results/"+l.Key, nil); code != http.StatusNotFound {
		t.Errorf("corrupt upload reached the store (result status %d)", code)
	}
	// An unknown lease is a conflict the worker resolves by walking away.
	code = postJSON(t, ts.URL+"/v1/leases/lease-999/extend", struct{}{}, nil)
	if code != http.StatusConflict {
		t.Errorf("unknown lease extend: status %d, want 409", code)
	}
}

// TestCatalogEndpoint checks capability discovery matches the registries
// and validators the planners actually use.
func TestCatalogEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var cat catalogResponse
	if code := getJSON(t, ts.URL+"/v1/catalog", &cat); code != http.StatusOK {
		t.Fatalf("catalog: status %d", code)
	}
	if !reflect.DeepEqual(cat.Schemes, steer.Names()) {
		t.Errorf("schemes = %v, want the steer registry %v", cat.Schemes, steer.Names())
	}
	if !reflect.DeepEqual(cat.Benchmarks, workload.Names()) {
		t.Errorf("benchmarks = %v, want the workload registry %v", cat.Benchmarks, workload.Names())
	}
	if !reflect.DeepEqual(cat.PseudoSchemes, []string{job.BaseScheme, job.UBScheme}) {
		t.Errorf("pseudo schemes = %v", cat.PseudoSchemes)
	}
	for _, n := range cat.Clusters {
		if err := job.ValidateClusters(n); err != nil {
			t.Errorf("catalog advertises invalid cluster count %d: %v", n, err)
		}
	}
	if len(cat.Clusters) == 0 || cat.LeaseTTLMS <= 0 {
		t.Errorf("catalog incomplete: %+v", cat)
	}
	// Every advertised (scheme, benchmark) must plan: the catalog is a
	// promise, so spot-check the full cross product at the cheapest size.
	for _, scheme := range append(append([]string{}, cat.PseudoSchemes...), cat.Schemes...) {
		for _, bench := range cat.Benchmarks {
			if _, err := (job.Spec{Scheme: scheme, Benchmark: bench, Measure: 1}).Plan(); err != nil {
				t.Errorf("advertised %s/%s does not plan: %v", scheme, bench, err)
			}
		}
	}
}
