package main

import (
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// This file is the admission-control layer: a per-client token-bucket rate
// limiter on the submission endpoints, and a bounded waiting room in front
// of the simulation semaphore. Both shed load as 429 + Retry-After instead
// of letting a thundering herd queue without bound — the client is told
// when to come back, and the server's latency for admitted work stays flat.

// limits is the admission-control configuration (zero values disable each
// mechanism's flag-tunable part and fall back to defaults).
type limits struct {
	// Rate is the sustained per-client request rate (requests/second) on
	// the submission endpoints (/v1/jobs, /v1/grids, /v1/queue); <= 0
	// disables rate limiting.
	Rate float64
	// Burst is the token-bucket depth — how many requests a client may
	// send back-to-back before the sustained rate applies. <= 0 means
	// 2*Rate (minimum 1).
	Burst int
	// AdmitQueue bounds how many /v1/jobs requests may wait on the
	// simulation semaphore beyond the ones actually running; <= 0 means
	// 4 * parallelism.
	AdmitQueue int
}

// rateLimiter is a per-client token-bucket limiter. Buckets refill at rate
// tokens/second up to burst; a request takes one token or is refused with
// the time until a token exists. Idle buckets are pruned so one-shot
// clients do not accumulate forever.
type rateLimiter struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu        sync.Mutex
	buckets   map[string]*bucket
	lastPrune time.Time
}

// bucket is one client's token balance at time last.
type bucket struct {
	tokens float64
	last   time.Time
}

// newRateLimiter returns a limiter allowing rate requests/second with the
// given burst per client key.
func newRateLimiter(rate float64, burst int, now func() time.Time) *rateLimiter {
	b := float64(burst)
	if burst <= 0 {
		b = math.Max(1, 2*rate)
	}
	return &rateLimiter{
		rate:    rate,
		burst:   b,
		now:     now,
		buckets: make(map[string]*bucket),
	}
}

// allow takes one token from client's bucket. When the bucket is empty it
// reports false plus how long until the next token accrues — the
// Retry-After the handler sends.
func (l *rateLimiter) allow(client string) (retryAfter time.Duration, ok bool) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pruneLocked(now)
	b, present := l.buckets[client]
	if !present {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	return time.Duration((1 - b.tokens) / l.rate * float64(time.Second)), false
}

// pruneLocked drops buckets idle long enough to have refilled completely —
// indistinguishable from fresh ones, so the map stays bounded by the
// active client set. Runs at most once per minute. Callers hold l.mu.
func (l *rateLimiter) pruneLocked(now time.Time) {
	if now.Sub(l.lastPrune) < time.Minute {
		return
	}
	l.lastPrune = now
	full := time.Duration(l.burst / l.rate * float64(time.Second))
	for key, b := range l.buckets {
		if now.Sub(b.last) > full {
			delete(l.buckets, key)
		}
	}
}

// clientKey identifies the requester for rate limiting and log
// attribution: the self-reported X-Client-ID when present (workers and
// load generators name themselves), the peer address otherwise.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// throttle wraps a submission endpoint with the per-client rate limiter.
// With no limiter configured it is a no-op, so the default server behaves
// exactly as before the admission layer existed.
func (s *server) throttle(endpoint string, next http.Handler) http.Handler {
	if s.limiter == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		retry, ok := s.limiter.allow(clientKey(r))
		if !ok {
			s.metrics.throttled.With(endpoint).Inc()
			writeRetryAfter(w, retry)
			writeError(w, http.StatusTooManyRequests,
				fmt.Errorf("rate limit exceeded; retry after %s", retry.Round(time.Millisecond)))
			return
		}
		next.ServeHTTP(w, r)
	})
}

// writeRetryAfter sets Retry-After in whole seconds, rounded up so a
// client that honors it exactly never arrives early, with a floor of 1
// (the header's granularity).
func writeRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}
