// Command dcaserve is the simulation service: a long-running HTTP server
// that plans submitted cells into canonical jobs (internal/job), simulates
// them on a bounded worker pool, and caches every result by content digest
// (internal/job/store) — so identical cells, across requests and clients,
// are simulated exactly once. Concurrent identical submissions coalesce
// onto one in-flight simulation.
//
// API (see ARCHITECTURE.md's "Run layer" section):
//
//	POST /v1/jobs          one cell  {scheme, benchmark, clusters?, warmup, measure, params?}
//	POST /v1/grids         a batch   {schemes, benchmarks?, clusters?, warmup, measure, params?}
//	                       → NDJSON: per-cell progress events, then the full grid export
//	GET  /v1/results/{key} a cached result by job digest
//	GET  /healthz          liveness + cache counters
//
// Usage:
//
//	dcaserve                          # in-memory LRU cache only, port 8080
//	dcaserve -addr :9000 -store ./res # persist results under ./res
//	dcaserve -cache 4096 -j 8         # bigger LRU, 8 grid workers
//
//	curl -s localhost:8080/v1/jobs -d '{"scheme":"general","benchmark":"go","warmup":1000,"measure":10000}'
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"repro/internal/job/store"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		diskDir = flag.String("store", "", "persist results as JSON under this directory (empty = memory only)")
		cache   = flag.Int("cache", 1024, "in-memory LRU capacity in results (0 = unbounded)")
		jobs    = flag.Int("j", 0, "cells simulated in parallel per grid (0 = all cores)")
	)
	flag.Parse()

	var st store.Store = store.NewMemory(*cache)
	if *diskDir != "" {
		disk, err := store.NewDisk(*diskDir)
		if err != nil {
			fatal(err)
		}
		st = store.Tiered{Fast: st, Slow: disk}
		fmt.Printf("dcaserve: %d results on disk under %s\n", disk.Len(), *diskDir)
	}
	srv := newServer(st, nil, *jobs)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dcaserve: listening on http://%s\n", ln.Addr())
	if err := http.Serve(ln, srv.handler()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dcaserve:", err)
	os.Exit(1)
}
