// Command dcaserve is the simulation service: a long-running HTTP server
// that plans submitted cells into canonical jobs (internal/job), simulates
// them on a bounded worker pool, and caches every result by content digest
// (internal/job/store) — so identical cells, across requests and clients,
// are simulated exactly once. Concurrent identical submissions coalesce
// onto one in-flight simulation. For horizontal scale-out it also runs a
// lease-based job queue (internal/job/queue) that a cmd/dcaworker fleet
// drains, with every verified upload landing in the same store.
//
// API (see ARCHITECTURE.md's "Run layer" and "Distributed layer"):
//
//	POST /v1/jobs               one cell  {scheme, benchmark, clusters?, warmup, measure, params?}
//	POST /v1/grids              a batch   {schemes, benchmarks?, clusters?, warmup, measure, params?}
//	                            → NDJSON: per-cell progress events, then the full grid export
//	GET  /v1/results/{key}      a cached result by job digest
//	GET  /v1/catalog            valid schemes, benchmarks, cluster counts, defaults
//	POST /v1/queue              enqueue {spec: …} or {grid: …} for the worker fleet; returns keys.
//	                            Runs EXACTLY the cells submitted (unlike /v1/grids, which adds
//	                            the base pseudo-scheme for speed-up normalization)
//	GET  /v1/queue/stats        queue depth/inflight/retry counters
//	GET  /v1/watch?keys=k1,k2   NDJSON stream: "done"/"failed" per key as it settles
//	                            (worker uploads included), then a "complete" summary
//	POST /v1/leases             worker long-poll: lease a job batch
//	POST /v1/leases/{id}/complete  upload a verified result (or nack with an error)
//	POST /v1/leases/{id}/extend    heartbeat a long-running lease
//	GET  /healthz               liveness + cache and queue counters
//	GET  /metrics               Prometheus text exposition: store hit/miss/coalesced,
//	                            queue depth and lease churn, per-endpoint latency
//
// Admission control: -rate/-burst put a per-client token bucket (keyed by
// X-Client-ID, falling back to remote address) on the submission endpoints
// (/v1/jobs, /v1/grids, /v1/queue); -admit bounds how many /v1/jobs
// requests may wait on the simulation semaphore. Both shed excess load as
// 429 with a Retry-After header. The worker lease protocol is never
// throttled. Every request also emits one structured JSON access-log line.
//
// Usage:
//
//	dcaserve                          # in-memory LRU cache only, port 8080
//	dcaserve -addr :9000 -store ./res # persist results under ./res
//	dcaserve -cache 4096 -j 8         # bigger LRU, 8 grid workers
//	dcaserve -lease-ttl 2m -retries 5 # slow cells, patient queue
//	dcaserve -rate 50 -burst 100      # ≤50 req/s sustained per client
//	dcaserve -admit 32                # ≤32 jobs waiting beyond those running
//	dcaserve -traced                  # record-once/replay-many oracle streams
//
//	curl -s localhost:8080/v1/jobs -d '{"scheme":"general","benchmark":"go","warmup":1000,"measure":10000}'
//	curl -s localhost:8080/v1/queue -d '{"grid":{"schemes":["general"],"warmup":1000,"measure":10000}}'
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight
// requests (including running simulations) get -drain to finish, and held
// leases need no release — the in-memory queue dies with the process
// while every completed result is already in the store.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/job"
	"repro/internal/job/queue"
	"repro/internal/job/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		diskDir  = flag.String("store", "", "persist results as JSON under this directory (empty = memory only)")
		cache    = flag.Int("cache", 1024, "in-memory LRU capacity in results (0 = unbounded)")
		jobs     = flag.Int("j", 0, "cells simulated in parallel per grid (0 = all cores)")
		leaseTTL = flag.Duration("lease-ttl", queue.DefaultLeaseTTL, "worker lease duration before a job requeues")
		retries  = flag.Int("retries", queue.DefaultMaxAttempts, "attempts per queued job before it parks as failed")
		drain    = flag.Duration("drain", 30*time.Second, "shutdown grace for in-flight requests")
		rate     = flag.Float64("rate", 0, "per-client request rate on submission endpoints, req/s (0 = unlimited)")
		burst    = flag.Int("burst", 0, "per-client burst above -rate (0 = 2×rate)")
		admit    = flag.Int("admit", 0, "max /v1/jobs requests waiting on the simulator beyond those running (0 = 4×parallelism)")
		traced   = flag.Bool("traced", false, "record each (benchmark, window) oracle stream once and replay it for every cell (internal/trace)")
	)
	flag.Parse()

	var st store.Store = store.NewMemory(*cache)
	if *diskDir != "" {
		disk, err := store.NewDisk(*diskDir)
		if err != nil {
			fatal(err)
		}
		st = store.Tiered{Fast: st, Slow: disk}
		fmt.Printf("dcaserve: %d results on disk under %s\n", disk.Len(), *diskDir)
	}
	// With -traced, cache misses simulate through the trace layer; the
	// encoded recordings live in the same store (its blob face) as the
	// results, so they persist exactly when results do.
	var runner job.Runner
	if *traced {
		blobs, _ := st.(job.BlobStore) // both store backends implement it
		runner = &job.Traced{Blobs: blobs}
	}
	srv := newServer(st, runner, *jobs,
		queue.Options{LeaseTTL: *leaseTTL, MaxAttempts: *retries},
		limits{Rate: *rate, Burst: *burst, AdmitQueue: *admit})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dcaserve: listening on http://%s\n", ln.Addr())

	// Serve until a signal, then drain: Shutdown closes the listener and
	// waits for in-flight requests — a mid-simulation cell finishes and
	// its result reaches the store instead of dying with the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Handler: srv.handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		fmt.Printf("dcaserve: draining (up to %s)\n", *drain)
		// Wake long-polling /v1/leases first: Shutdown waits for in-flight
		// requests, and an idle worker's poll would otherwise hold the
		// drain open for its full wait.
		srv.queue.Close()
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			fatal(fmt.Errorf("drain: %w", err))
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
		fmt.Println("dcaserve: drained")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dcaserve:", err)
	os.Exit(1)
}
