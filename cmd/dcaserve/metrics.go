package main

import (
	"net/http"
	"sync"

	"repro/internal/job/queue"
	"repro/internal/obs"
)

// This file wires the run layer's existing counters into an obs.Registry
// and serves it at GET /metrics in the Prometheus text exposition format.
// Nothing here adds instrumentation to hot paths: store and queue counters
// already exist and are read at scrape time; only the HTTP middleware
// observes per-request.

// serverMetrics bundles the server's registry and the handles the
// admission and watch layers update directly.
type serverMetrics struct {
	reg *obs.Registry
	// httpm wraps every route with request counts, latency histograms and
	// in-flight gauges labeled by route pattern.
	httpm *obs.HTTPMetrics
	// throttled counts requests refused by the per-client rate limiter,
	// by endpoint; admissionRejected counts /v1/jobs requests refused
	// because the bounded waiting room was full. Both are 429s — split so
	// a dashboard can tell "client over its budget" from "server full".
	throttled         *obs.CounterVec
	admissionRejected *obs.Counter
	// probeRuns counts probed job submissions (simulated with a
	// cycle-attribution probe attached); probeStallCycles accumulates the
	// cycles those runs attributed, by stall class — a fleet-level view of
	// where the simulated machines' time goes.
	probeRuns        *obs.Counter
	probeStallCycles *obs.CounterVec
}

// initMetrics builds the registry over the server's store, runner and
// queue. The queue's counters come from one Stats() snapshot per scrape
// (taken by an OnCollect hook) rather than one call per metric.
func (s *server) initMetrics() {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg:   reg,
		httpm: obs.NewHTTPMetrics(reg),
		throttled: reg.CounterVec("dcaserve_throttled_total",
			"Requests refused by the per-client rate limiter, by endpoint.", "endpoint"),
		admissionRejected: reg.Counter("dcaserve_admission_rejected_total",
			"Job submissions refused because the admission queue was full."),
		probeRuns: reg.Counter("dcaserve_probe_runs_total",
			"Job submissions simulated with a cycle-attribution probe attached."),
		probeStallCycles: reg.CounterVec("dcaserve_probe_stall_cycles_total",
			"Measured cycles attributed by probed runs, by stall class.", "class"),
	}

	// Store: the coalescing runner's counters and the cache size.
	reg.CounterFunc("dcaserve_store_hits_total",
		"Simulation requests served straight from the result store.",
		func() float64 { return float64(s.runner.Metrics().Hits) })
	reg.CounterFunc("dcaserve_store_misses_total",
		"Simulation requests that missed the store and simulated.",
		func() float64 { return float64(s.runner.Metrics().Misses) })
	reg.CounterFunc("dcaserve_store_coalesced_total",
		"Simulation requests coalesced onto an identical in-flight run.",
		func() float64 { return float64(s.runner.Metrics().Coalesced) })
	reg.GaugeFunc("dcaserve_store_results",
		"Results currently held by the store.",
		func() float64 { return float64(s.st.Len()) })

	// Queue: one snapshot per scrape, shared by every family below.
	var qmu sync.Mutex
	var qs queue.Stats
	reg.OnCollect(func() {
		snap := s.queue.Stats()
		qmu.Lock()
		qs = snap
		qmu.Unlock()
	})
	stat := func(read func(queue.Stats) float64) func() float64 {
		return func() float64 {
			qmu.Lock()
			defer qmu.Unlock()
			return read(qs)
		}
	}
	reg.GaugeFunc("dcaserve_queue_depth",
		"Jobs pending in the queue.",
		stat(func(q queue.Stats) float64 { return float64(q.Depth) }))
	reg.GaugeFunc("dcaserve_queue_inflight",
		"Jobs currently leased to workers.",
		stat(func(q queue.Stats) float64 { return float64(q.Inflight) }))
	reg.GaugeFunc("dcaserve_queue_failed",
		"Jobs parked as failed after exhausting their attempt budget.",
		stat(func(q queue.Stats) float64 { return float64(q.Failed) }))
	for _, c := range []struct {
		name, help string
		read       func(queue.Stats) float64
	}{
		{"dcaserve_queue_enqueued_total", "Jobs accepted into the queue.",
			func(q queue.Stats) float64 { return float64(q.Enqueued) }},
		{"dcaserve_queue_deduped_queue_total", "Submissions satisfied by an identical queued or leased job.",
			func(q queue.Stats) float64 { return float64(q.DedupedQueue) }},
		{"dcaserve_queue_deduped_store_total", "Submissions satisfied by a stored result.",
			func(q queue.Stats) float64 { return float64(q.DedupedStore) }},
		{"dcaserve_queue_leased_total", "Lease hand-outs, retries included.",
			func(q queue.Stats) float64 { return float64(q.Leased) }},
		{"dcaserve_queue_completed_total", "Jobs completed under a live lease.",
			func(q queue.Stats) float64 { return float64(q.Completed) }},
		{"dcaserve_queue_late_completed_total", "Uploads accepted after their lease expired.",
			func(q queue.Stats) float64 { return float64(q.LateCompleted) }},
		{"dcaserve_queue_expired_total", "Lease deadlines that lapsed.",
			func(q queue.Stats) float64 { return float64(q.Expired) }},
		{"dcaserve_queue_nacked_total", "Explicit failure reports from workers.",
			func(q queue.Stats) float64 { return float64(q.Nacked) }},
		{"dcaserve_queue_retried_total", "Jobs requeued after an expiry or nack.",
			func(q queue.Stats) float64 { return float64(q.Retried) }},
		{"dcaserve_queue_exhausted_total", "Jobs that hit their attempt budget and parked as failed.",
			func(q queue.Stats) float64 { return float64(q.Exhausted) }},
	} {
		reg.CounterFunc(c.name, c.help, stat(c.read))
	}

	// Watch subscriptions.
	reg.GaugeFunc("dcaserve_watch_keys",
		"Result keys with at least one live /v1/watch subscriber.",
		func() float64 { return float64(s.watch.watcherCount()) })

	s.metrics = m
}

// handleMetrics serves the registry as Prometheus scrape input.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.reg.WritePrometheus(w); err != nil {
		logf("dcaserve: write metrics: %v", err)
	}
}
