package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/job"
	"repro/internal/job/queue"
	"repro/internal/job/store"
	"repro/internal/stats"
)

// countingRunner counts actual simulations beneath the server's cache.
type countingRunner struct {
	mu    sync.Mutex
	calls int
}

func (c *countingRunner) Run(ctx context.Context, j job.Job) (*stats.Run, error) {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	return job.Direct{}.Run(ctx, j)
}

func (c *countingRunner) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

func newTestServer(t *testing.T) (*httptest.Server, *countingRunner) {
	t.Helper()
	counting := &countingRunner{}
	ts := httptest.NewServer(newServer(store.NewMemory(0), counting, 2, queue.Options{}, limits{}).handler())
	t.Cleanup(ts.Close)
	return ts, counting
}

const tinySpec = `{"scheme":"general","benchmark":"go","warmup":100,"measure":1000}`

func postJob(t *testing.T, ts *httptest.Server, body string) (jobResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr jobResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
	}
	return jr, resp.StatusCode
}

// TestJobEndpoint checks the single-cell flow: a well-formed submission
// returns 200 with a digest-keyed result, and resubmitting it is a cache
// hit with a bit-identical result digest.
func TestJobEndpoint(t *testing.T) {
	ts, counting := newTestServer(t)

	cold, status := postJob(t, ts, tinySpec)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if len(cold.Key) != 64 {
		t.Errorf("key %q is not a hex digest", cold.Key)
	}
	if cold.Cached {
		t.Error("first submission reported cached")
	}
	if cold.Result == nil || cold.Result.IPC() <= 0 {
		t.Errorf("result missing or degenerate: %+v", cold.Result)
	}
	if cold.ResultDigest != job.ResultDigest(cold.Result) {
		t.Error("result digest does not match the result")
	}

	warm, status := postJob(t, ts, tinySpec)
	if status != http.StatusOK {
		t.Fatalf("warm status = %d", status)
	}
	if !warm.Cached {
		t.Error("second submission not served from the store")
	}
	if warm.Key != cold.Key || warm.ResultDigest != cold.ResultDigest {
		t.Errorf("warm (%s, %s) != cold (%s, %s)", warm.Key, warm.ResultDigest, cold.Key, cold.ResultDigest)
	}
	if n := counting.count(); n != 1 {
		t.Errorf("%d simulations for two identical submissions, want 1", n)
	}
}

// TestJobValidation checks bad submissions get 400s carrying the job
// layer's error text — the same message dcasim and dcabench print.
func TestJobValidation(t *testing.T) {
	ts, counting := newTestServer(t)
	for _, tc := range []struct{ name, body, wantErr string }{
		{"malformed", `{"scheme":`, "malformed job spec"},
		{"no window", `{"scheme":"general","benchmark":"go"}`, "measure must be positive"},
		{"bad scheme", `{"scheme":"nope","benchmark":"go","measure":100}`, job.ValidateScheme("nope").Error()},
		{"bad bench", `{"scheme":"general","benchmark":"nope","measure":100}`, job.ValidateBenchmark("nope").Error()},
		{"bad clusters", `{"scheme":"general","benchmark":"go","measure":100,"clusters":99}`, job.ValidateClusters(99).Error()},
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var er errorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
		if !strings.Contains(er.Error, tc.wantErr) {
			t.Errorf("%s: error %q does not carry %q", tc.name, er.Error, tc.wantErr)
		}
	}
	if n := counting.count(); n != 0 {
		t.Errorf("%d simulations ran for invalid submissions", n)
	}
}

// TestJobProbed checks the probe opt-in: a {"probe":true} submission
// returns a stall breakdown that reconciles with the result, the result
// itself is bit-identical to an unprobed submission of the same spec
// (attribution rides alongside, never inside, the digest-addressed
// result), the probed run feeds the store, and the probe counters reach
// /metrics.
func TestJobProbed(t *testing.T) {
	ts, counting := newTestServer(t)

	plain, status := postJob(t, ts, tinySpec)
	if status != http.StatusOK {
		t.Fatalf("plain status = %d", status)
	}
	if plain.Attribution != nil {
		t.Error("unprobed submission carries attribution")
	}

	probed, status := postJob(t, ts, `{"scheme":"general","benchmark":"go","warmup":100,"measure":1000,"probe":true}`)
	if status != http.StatusOK {
		t.Fatalf("probed status = %d", status)
	}
	if probed.Key != plain.Key {
		t.Errorf("probe flag changed the job key: %s vs %s", probed.Key, plain.Key)
	}
	if probed.ResultDigest != plain.ResultDigest {
		t.Error("probed result digest differs from the unprobed one (probe is not passive)")
	}
	rep := probed.Attribution
	if rep == nil {
		t.Fatal("probed submission returned no attribution")
	}
	if rep.Sum() != rep.TotalCycles || rep.TotalCycles != probed.Result.Cycles {
		t.Errorf("attribution (%d summed, %d total) does not reconcile with %d measured cycles",
			rep.Sum(), rep.TotalCycles, probed.Result.Cycles)
	}
	// The probed run simulated (it cannot be served from the store), so two
	// submissions → one cached-runner simulation + one probed one.
	if n := counting.count(); n != 1 {
		t.Errorf("cached runner simulated %d times, want 1 (probed path runs direct)", n)
	}

	// GET /v1/results serves the stored result without attribution.
	resp, err := http.Get(ts.URL + "/v1/results/" + probed.Key)
	if err != nil {
		t.Fatal(err)
	}
	var got jobResponse
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got.Attribution != nil {
		t.Error("stored result carries attribution")
	}
	if got.ResultDigest != plain.ResultDigest {
		t.Error("stored result drifted after the probed run fed the store")
	}

	// The serve-path probe counters are exported.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(raw)
	if !strings.Contains(metrics, "dcaserve_probe_runs_total 1") {
		t.Error("metrics miss dcaserve_probe_runs_total 1")
	}
	if !strings.Contains(metrics, `dcaserve_probe_stall_cycles_total{class="committing"}`) {
		t.Error("metrics miss the per-class stall cycle counters")
	}
}

// TestJobCoalescing is the service's concurrency contract: many parallel
// submissions of the same job key trigger exactly one simulation, and
// every caller gets the same result.
func TestJobCoalescing(t *testing.T) {
	ts, counting := newTestServer(t)
	const parallel = 8

	var wg sync.WaitGroup
	responses := make([]jobResponse, parallel)
	statuses := make([]int, parallel)
	wg.Add(parallel)
	for i := 0; i < parallel; i++ {
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tinySpec))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			json.NewDecoder(resp.Body).Decode(&responses[i])
		}(i)
	}
	wg.Wait()

	if n := counting.count(); n != 1 {
		t.Errorf("%d simulations for %d concurrent identical submissions, want exactly 1", n, parallel)
	}
	for i := 1; i < parallel; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("caller %d: status %d", i, statuses[i])
		}
		if responses[i].Key != responses[0].Key {
			t.Errorf("caller %d got key %s, caller 0 got %s", i, responses[i].Key, responses[0].Key)
		}
		if responses[i].ResultDigest != responses[0].ResultDigest {
			t.Errorf("caller %d got a different result digest", i)
		}
	}
}

// TestResultsEndpoint checks content-addressed retrieval: a stored result
// is served under its job key, unknown keys 404.
func TestResultsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	posted, _ := postJob(t, ts, tinySpec)

	resp, err := http.Get(ts.URL + "/v1/results/" + posted.Key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var got jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.Cached || got.ResultDigest != posted.ResultDigest {
		t.Errorf("served result (cached=%v, digest=%s) does not match the stored one (%s)",
			got.Cached, got.ResultDigest, posted.ResultDigest)
	}

	resp, err = http.Get(ts.URL + "/v1/results/" + strings.Repeat("00", 32))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown key: status = %d, want 404", resp.StatusCode)
	}
}

// TestGridEndpoint checks the batch flow: NDJSON progress events for every
// cell (base included), then a result event whose export carries jobs,
// digests and stats.
func TestGridEndpoint(t *testing.T) {
	ts, counting := newTestServer(t)
	body := `{"schemes":["modulo"],"benchmarks":["go","compress"],"warmup":100,"measure":1000}`
	resp, err := http.Post(ts.URL+"/v1/grids", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %s", ct)
	}

	var progress int
	var result *gridEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev gridEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "progress":
			progress++
			if ev.Progress == nil {
				t.Fatalf("progress event without progress payload: %s", sc.Text())
			}
			if ev.Progress.Total != 4 {
				t.Errorf("progress Total = %d, want 4 (base+modulo x 2 benchmarks)", ev.Progress.Total)
			}
		case "result":
			result = &ev
		case "error":
			t.Fatalf("in-stream error: %s", ev.Error)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if progress != 4 {
		t.Errorf("%d progress events, want 4", progress)
	}
	if result == nil || result.Grid == nil {
		t.Fatal("no result event")
	}
	if len(result.Grid.Cells) != 4 {
		t.Fatalf("export has %d cells, want 4", len(result.Grid.Cells))
	}
	for _, cell := range result.Grid.Cells {
		if cell.Key != cell.Job.Key() {
			t.Errorf("%s/%s: exported key does not match the job digest", cell.Job.Scheme, cell.Job.Benchmark)
		}
		if cell.ResultDigest != job.ResultDigest(cell.Result) {
			t.Errorf("%s/%s: exported result digest mismatch", cell.Job.Scheme, cell.Job.Benchmark)
		}
	}
	if n := counting.count(); n != 4 {
		t.Errorf("%d simulations, want 4", n)
	}

	// The grid populated the store: a single-job submission of one of its
	// cells must be a cache hit, not a new simulation.
	warm, _ := postJob(t, ts, `{"scheme":"modulo","benchmark":"go","warmup":100,"measure":1000}`)
	if !warm.Cached {
		t.Error("grid cell not reusable by a single-job submission")
	}
	if n := counting.count(); n != 4 {
		t.Errorf("single-job resubmission re-simulated (now %d simulations)", n)
	}

	// Grid validation failures are pre-stream 400s.
	resp, err = http.Post(ts.URL+"/v1/grids", "application/json",
		strings.NewReader(`{"schemes":["nope"],"measure":100}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid grid: status = %d, want 400", resp.StatusCode)
	}
}

// TestHealthz checks liveness and the cache counters.
func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	postJob(t, ts, tinySpec)
	postJob(t, ts, tinySpec)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status string `json:"status"`
		Hits   uint64 `json:"hits"`
		Misses uint64 `json:"misses"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Misses != 1 || h.Hits != 1 {
		t.Errorf("healthz = %+v, want ok with 1 hit / 1 miss", h)
	}
}

// BenchmarkServeThroughput measures end-to-end service throughput on the
// tiny 1k-instruction job, with GOMAXPROCS concurrent clients hammering
// one server (jobs/sec = 1e9 / ns/op; BENCH_serve.json records a
// reference run):
//
//	cold — every request is a distinct job key: each op pays one full
//	       simulation through the HTTP stack.
//	warm — every request is the same key: after the first op each is a
//	       pure cache hit (store decode + HTTP).
func BenchmarkServeThroughput(b *testing.B) {
	bench := func(b *testing.B, body func(i int64) string) {
		// Silence the access log: a line per request would dominate the
		// measurement and corrupt `go test -bench` output parsing
		// (cmd/dcabenchref), since the test binary's stderr is merged into
		// go test's stdout mid-line.
		prev := logf
		logf = func(string, ...any) {}
		b.Cleanup(func() { logf = prev })
		ts := httptest.NewServer(newServer(store.NewMemory(0), nil, 0, queue.Options{}, limits{}).handler())
		defer ts.Close()
		var ctr atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
					bytes.NewReader([]byte(body(ctr.Add(1)))))
				if err != nil {
					b.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("status %d", resp.StatusCode)
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
			}
		})
	}
	b.Run("cold", func(b *testing.B) {
		// A distinct Threshold per op gives every request a fresh job key
		// while keeping the simulated work essentially constant.
		bench(b, func(i int64) string {
			return fmt.Sprintf(`{"scheme":"general","benchmark":"go","warmup":100,"measure":1000,`+
				`"params":{"Threshold":%d,"Window":16,"Epoch":8192,"CriticalFraction":0.5,"IssueWidth":4}}`, i)
		})
	})
	b.Run("warm", func(b *testing.B) {
		bench(b, func(int64) string { return tinySpec })
	})
}
