// Command dcatrace records, inspects and converts oracle traces — the
// content-addressed Step streams of internal/trace that the grid runners
// replay instead of re-running the functional emulator (dcasim -replay,
// dcabench/dcaserve/dcaworker -traced).
//
// Subcommands:
//
//	dcatrace record -bench compress -n 1000 -o c.trace   # record 1000 instructions
//	dcatrace record -bench go -n 0 -o go.trace           # record to HALT
//	dcatrace info c.trace                                # header + digest as JSON
//	dcatrace dump -bench compress c.trace                # decoded steps as NDJSON
//	dcatrace convert -bench compress -i steps.ndjson -o c.trace
//
// record and dump accept -program file.s in place of -bench, mirroring
// dcasim. info needs no program: it prints the verified header (Decode
// checks the whole-file checksum, so a corrupted or truncated trace fails
// here, loudly). convert ingests an externally captured stream (the NDJSON
// dump format) and re-encodes it; every step is verified against the
// program's semantics and the result is validated end to end before it is
// written, so a stream the program cannot have produced is rejected at
// the door.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/prog"
	"repro/internal/trace"
	"repro/internal/workload"
)

// recordBudget caps a -n 0 (to-HALT) recording so a divergent program
// fails instead of filling the disk.
const recordBudget = 50_000_000

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "dump":
		err = cmdDump(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcatrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: dcatrace <record|info|dump|convert> [flags]

  record  -bench NAME | -program FILE, -n COUNT (0 = to HALT), [-window N] -o FILE
  info    FILE
  dump    -bench NAME | -program FILE, [-limit N] FILE
  convert -bench NAME | -program FILE, -i FILE ('-' = stdin), [-window N] -o FILE`)
	os.Exit(2)
}

// loadProgram resolves the -bench/-program pair the way dcasim does.
func loadProgram(bench, file string) (*prog.Program, error) {
	if file != "" {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return asm.Assemble(filepath.Base(file), string(src))
	}
	return workload.Load(bench)
}

// writeTrace validates, encodes and atomically writes the trace, then
// prints its header (with digest) to stdout.
func writeTrace(tr *trace.Trace, p *prog.Program, out string) error {
	if err := tr.Validate(p); err != nil {
		return err
	}
	raw := tr.Encode()
	tmp := out + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, out); err != nil {
		os.Remove(tmp)
		return err
	}
	return printMeta(tr)
}

func printMeta(tr *trace.Trace) error {
	raw, err := json.MarshalIndent(tr.Meta(), "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(raw))
	return nil
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	bench := fs.String("bench", "compress", "workload name")
	file := fs.String("program", "", "assembly file instead of a named workload")
	n := fs.Uint64("n", 0, "instructions to record (0 = to HALT)")
	window := fs.Uint64("window", 0, "window header: the committed-instruction budget the recording is for (0 = -n)")
	out := fs.String("o", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("record: -o is required")
	}
	p, err := loadProgram(*bench, *file)
	if err != nil {
		return err
	}
	rec := trace.NewRecorder(p)
	budget := *n
	if budget == 0 {
		budget = recordBudget
	}
	if err := rec.Extend(budget); err != nil {
		return fmt.Errorf("recording %s: %w", p.Name, err)
	}
	if *n == 0 && !rec.Halted() {
		return fmt.Errorf("recording %s: no HALT within %d instructions", p.Name, recordBudget)
	}
	w := *window
	if w == 0 {
		w = *n
	}
	return writeTrace(rec.Finalize(w), p, *out)
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("info: exactly one trace file expected")
	}
	raw, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	tr, err := trace.Decode(raw)
	if err != nil {
		return err
	}
	return printMeta(tr)
}

func cmdDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	bench := fs.String("bench", "compress", "workload name")
	file := fs.String("program", "", "assembly file instead of a named workload")
	limit := fs.Uint64("limit", 0, "print at most this many steps (0 = all)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("dump: exactly one trace file expected")
	}
	p, err := loadProgram(*bench, *file)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	tr, err := trace.Decode(raw)
	if err != nil {
		return err
	}
	steps, err := tr.DecodeSteps(p)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	enc := json.NewEncoder(w)
	for i := range steps {
		if *limit > 0 && uint64(i) >= *limit {
			break
		}
		if err := enc.Encode(&steps[i]); err != nil {
			return err
		}
	}
	return nil
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	bench := fs.String("bench", "compress", "workload name")
	file := fs.String("program", "", "assembly file instead of a named workload")
	in := fs.String("i", "-", "NDJSON step stream to ingest ('-' = stdin; the dump format)")
	window := fs.Uint64("window", 0, "window header for the converted trace")
	out := fs.String("o", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("convert: -o is required")
	}
	p, err := loadProgram(*bench, *file)
	if err != nil {
		return err
	}
	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	var steps []emu.Step
	dec := json.NewDecoder(bufio.NewReader(r))
	for dec.More() {
		var st emu.Step
		if err := dec.Decode(&st); err != nil {
			return fmt.Errorf("convert: step %d: %w", len(steps), err)
		}
		steps = append(steps, st)
	}
	tr, err := trace.EncodeSteps(p, *window, steps)
	if err != nil {
		return fmt.Errorf("convert: %w", err)
	}
	return writeTrace(tr, p, *out)
}
