package repro

// The repository-level benchmark harness: one testing.B target per table
// and figure of the paper's evaluation (run them with `go test -bench=.`),
// plus ablation benches for the design choices DESIGN.md calls out and
// micro-benchmarks of the simulator substrates.
//
// Each figure bench runs the exact experiment grid of its exhibit at a
// reduced instruction budget (the shape of the results, not their absolute
// values, is the reproduction target; use cmd/dcabench -measure to run
// longer windows) and prints the rendered table once. The reported
// "ns/op" measures total simulation cost of the grid.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/experiments"
	"repro/internal/job"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/steer"
	"repro/internal/workload"
)

// benchOpts returns the reduced-budget grid options used by the figure
// benches.
func benchOpts() experiments.Options {
	opts := experiments.DefaultOptions()
	opts.Warmup = 10_000
	opts.Measure = 60_000
	return opts
}

var printMu sync.Mutex

// runExhibit executes one exhibit's grid and prints its table on the first
// iteration.
func runExhibit(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ExhibitByID(id)
	if !ok {
		b.Fatalf("unknown exhibit %s", id)
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(e.Schemes, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printMu.Lock()
			fmt.Printf("\n== %s\n%s\n", e.Title, e.Render(res))
			printMu.Unlock()
		}
	}
}

// --- One bench per paper exhibit ---

func BenchmarkTable1Workloads(b *testing.B) { runExhibit(b, "table1") }

func BenchmarkFig3StaticVsDynamic(b *testing.B) { runExhibit(b, "fig3") }

func BenchmarkFig4SliceSteering(b *testing.B) { runExhibit(b, "fig4") }

func BenchmarkFig5Communications(b *testing.B) { runExhibit(b, "fig5") }

func BenchmarkFig6Balance(b *testing.B) { runExhibit(b, "fig6") }

func BenchmarkFig7NonSliceBalance(b *testing.B) { runExhibit(b, "fig7") }

func BenchmarkFig8Communications(b *testing.B) { runExhibit(b, "fig8") }

func BenchmarkFig9Balance(b *testing.B) { runExhibit(b, "fig9") }

func BenchmarkFig11SliceBalance(b *testing.B) { runExhibit(b, "fig11") }

func BenchmarkFig12Balance(b *testing.B) { runExhibit(b, "fig12") }

func BenchmarkFig13PrioritySliceBalance(b *testing.B) { runExhibit(b, "fig13") }

func BenchmarkFig14GeneralBalance(b *testing.B) { runExhibit(b, "fig14") }

func BenchmarkFig15Replication(b *testing.B) { runExhibit(b, "fig15") }

func BenchmarkFig16FIFO(b *testing.B) { runExhibit(b, "fig16") }

// --- Ablations (design choices DESIGN.md calls out) ---

// ablationRun measures general-balance speed-up over base on two
// representative benchmarks under modified parameters or configs.
func ablationRun(b *testing.B, params steer.Params, mutate func(*config.Config)) float64 {
	b.Helper()
	benches := []string{"go", "m88ksim"}
	var runs, bases []*stats.Run
	for _, bench := range benches {
		p, err := workload.Load(bench)
		if err != nil {
			b.Fatal(err)
		}
		bm, err := core.New(config.Base(), p, core.NaiveSteerer{})
		if err != nil {
			b.Fatal(err)
		}
		baseRun, err := bm.RunWithWarmup(10_000, 60_000)
		if err != nil {
			b.Fatal(err)
		}
		st, err := steer.NewWithParams("general", p, params)
		if err != nil {
			b.Fatal(err)
		}
		cfg := config.Clustered()
		if mutate != nil {
			mutate(cfg)
		}
		m, err := core.New(cfg, p, st)
		if err != nil {
			b.Fatal(err)
		}
		r, err := m.RunWithWarmup(10_000, 60_000)
		if err != nil {
			b.Fatal(err)
		}
		runs, bases = append(runs, r), append(bases, baseRun)
	}
	return stats.GeoMeanSpeedup(runs, bases)
}

// BenchmarkAblationImbalanceMetric compares the combined I1+I2 imbalance
// counter against each metric alone (Section 3.5 reports I1 alone comes
// close to the combination).
func BenchmarkAblationImbalanceMetric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		combined := ablationRun(b, steer.DefaultParams(), nil)
		i1Only := steer.DefaultParams()
		i1Only.UseI2 = new(bool) // disable I2
		i2Only := steer.DefaultParams()
		i2Only.UseI1 = new(bool)
		s1 := ablationRun(b, i1Only, nil)
		s2 := ablationRun(b, i2Only, nil)
		if i == 0 {
			fmt.Printf("\n== Ablation: imbalance metric (general, go+m88ksim G-mean %%)\n"+
				"combined=%.1f  I1-only=%.1f  I2-only=%.1f\n", combined, s1, s2)
		}
	}
}

// BenchmarkAblationThreshold sweeps the strong-imbalance threshold
// (paper's empirical choice: 8).
func BenchmarkAblationThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		line := "\n== Ablation: imbalance threshold (general, go+m88ksim G-mean %)\n"
		for _, th := range []int{2, 4, 8, 16, 32} {
			p := steer.DefaultParams()
			p.Threshold = th
			line += fmt.Sprintf("threshold=%-2d %.1f\n", th, ablationRun(b, p, nil))
		}
		if i == 0 {
			fmt.Print(line)
		}
	}
}

// BenchmarkAblationWindow sweeps the I2 averaging window (paper: N=16).
func BenchmarkAblationWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		line := "\n== Ablation: I2 averaging window (general, go+m88ksim G-mean %)\n"
		for _, n := range []int{4, 8, 16, 32, 64} {
			p := steer.DefaultParams()
			p.Window = n
			line += fmt.Sprintf("window=%-2d %.1f\n", n, ablationRun(b, p, nil))
		}
		if i == 0 {
			fmt.Print(line)
		}
	}
}

// BenchmarkAblationBuses compares 1 vs 3 inter-cluster buses (Section 3.8
// claims one bus per direction performs at the same level).
func BenchmarkAblationBuses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		three := ablationRun(b, steer.DefaultParams(), nil)
		one := ablationRun(b, steer.DefaultParams(), func(c *config.Config) {
			c.InterClusterBuses = 1
		})
		if i == 0 {
			fmt.Printf("\n== Ablation: inter-cluster buses (general, go+m88ksim G-mean %%)\n"+
				"3 buses=%.1f  1 bus=%.1f\n", three, one)
		}
	}
}

// BenchmarkAblationCopyLatency compares 1- vs 2-cycle bypass latency.
func BenchmarkAblationCopyLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lat1 := ablationRun(b, steer.DefaultParams(), nil)
		lat2 := ablationRun(b, steer.DefaultParams(), func(c *config.Config) {
			c.CopyLatency = 2
		})
		if i == 0 {
			fmt.Printf("\n== Ablation: copy latency (general, go+m88ksim G-mean %%)\n"+
				"1 cycle=%.1f  2 cycles=%.1f\n", lat1, lat2)
		}
	}
}

// BenchmarkAblationCriticalityTarget sweeps the priority scheme's critical
// fraction target (paper: 50%).
func BenchmarkAblationCriticalityTarget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		line := "\n== Ablation: criticality target (br-priority, go+m88ksim G-mean %)\n"
		for _, frac := range []float64{0.25, 0.5, 0.75} {
			params := steer.DefaultParams()
			params.CriticalFraction = frac
			var runs, bases []*stats.Run
			for _, bench := range []string{"go", "m88ksim"} {
				p, _ := workload.Load(bench)
				bm, _ := core.New(config.Base(), p, core.NaiveSteerer{})
				baseRun, err := bm.RunWithWarmup(10_000, 60_000)
				if err != nil {
					b.Fatal(err)
				}
				st, _ := steer.NewWithParams("br-priority", p, params)
				m, _ := core.New(config.Clustered(), p, st)
				r, err := m.RunWithWarmup(10_000, 60_000)
				if err != nil {
					b.Fatal(err)
				}
				runs, bases = append(runs, r), append(bases, baseRun)
			}
			line += fmt.Sprintf("target=%.2f %.1f\n", frac, stats.GeoMeanSpeedup(runs, bases))
		}
		if i == 0 {
			fmt.Print(line)
		}
	}
}

// --- Extension benches (beyond the paper's evaluation) ---

// BenchmarkExtensionFPWorkloads runs the SpecFP analogs: the base machine
// already spreads FP code across both clusters (the naive split), so the
// steering gain shrinks — which is exactly the paper's Section 1 argument
// for why the interesting case is integer code.
func BenchmarkExtensionFPWorkloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		line := "\n== Extension: SpecFP analogs (speed-up % over base)\n"
		for _, bench := range workload.FPNames() {
			p, err := workload.Load(bench)
			if err != nil {
				b.Fatal(err)
			}
			bm, _ := core.New(config.Base(), p, core.NaiveSteerer{})
			baseRun, err := bm.RunWithWarmup(10_000, 60_000)
			if err != nil {
				b.Fatal(err)
			}
			st, _ := steer.New("general", p)
			m, _ := core.New(config.Clustered(), p, st)
			r, err := m.RunWithWarmup(10_000, 60_000)
			if err != nil {
				b.Fatal(err)
			}
			line += fmt.Sprintf("%-8s general=%+6.1f%%  comm/i=%.3f  split=[%d %d]\n",
				bench, stats.Speedup(r, baseRun), r.CommPerInstr(), r.Steered[0], r.Steered[1])
		}
		if i == 0 {
			fmt.Print(line)
		}
	}
}

// BenchmarkExtensionDecomposition isolates the two ingredients of general
// balance steering: operand-following alone ("operand"), randomness alone
// ("random"), against the full scheme and modulo.
func BenchmarkExtensionDecomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := benchOpts()
		res, err := experiments.Run([]string{"operand", "random", "modulo", "general"}, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n== Extension: general-balance decomposition (G-mean %% over base)\n")
			for _, s := range []string{"operand", "random", "modulo", "general"} {
				total, _ := res.MeanComm(s)
				fmt.Printf("%-8s %+6.1f%%  comm/i=%.3f\n", s, res.MeanSpeedup(s), total)
			}
		}
	}
}

// BenchmarkExtensionSymmetricClusters checks the conclusion's claim that
// the schemes carry over to symmetric clusters: general balance steering
// on a machine where both clusters execute everything.
func BenchmarkExtensionSymmetricClusters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		line := "\n== Extension: symmetric clusters (general, speed-up % over base)\n"
		for _, bench := range []string{"go", "m88ksim", "tomcatv"} {
			p, err := workload.Load(bench)
			if err != nil {
				b.Fatal(err)
			}
			bm, _ := core.New(config.Base(), p, core.NaiveSteerer{})
			baseRun, err := bm.RunWithWarmup(10_000, 60_000)
			if err != nil {
				b.Fatal(err)
			}
			st, _ := steer.New("general", p)
			m, _ := core.New(config.Symmetric(), p, st)
			r, err := m.RunWithWarmup(10_000, 60_000)
			if err != nil {
				b.Fatal(err)
			}
			line += fmt.Sprintf("%-8s %+6.1f%%  split=[%d %d]\n",
				bench, stats.Speedup(r, baseRun), r.Steered[0], r.Steered[1])
		}
		if i == 0 {
			fmt.Print(line)
		}
	}
}

// --- Engine benches ---

// BenchmarkGridParallelism measures how the experiment grid scales with
// the worker-pool size, from a serial run up to every core, and with the
// cluster count of the simulated machine (bigger machines cost more per
// cell — the simulation work grows with clusters, not just the fabric).
// The grid is fig14's (modulo, general, ub + implicit base over all
// benchmarks) — the paper's headline figure and a representative mix of
// cheap and expensive cells. Compare ns/op across the sub-benchmarks;
// BENCH_clusters.json records a reference run.
//
// All sub-benchmarks share one job.Checkpointed runner, the intended
// production shape for repeated grids: the first run of each cell pays
// its warm phase, every later iteration (and every other parallelism
// level of the same grid) replays measurement from the warm snapshot.
// Results are bit-identical to the direct runner (golden-locked).
func BenchmarkGridParallelism(b *testing.B) {
	warm := &job.Checkpointed{}
	var levels []int
	for j := 1; j < runtime.NumCPU(); j *= 2 {
		levels = append(levels, j)
	}
	levels = append(levels, runtime.NumCPU())
	for _, clusters := range []int{2, 4, 8} {
		for _, j := range levels {
			b.Run(fmt.Sprintf("clusters=%d/j=%d", clusters, j), func(b *testing.B) {
				opts := benchOpts()
				opts.Parallelism = j
				opts.Clusters = clusters
				opts.Runner = warm
				for i := 0; i < b.N; i++ {
					if _, err := experiments.Run([]string{"modulo", "general", experiments.UBScheme}, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTraceReplay measures the record-once/replay-many oracle front
// end on the fig14 grid (modulo, general, ub + implicit base over all
// benchmarks — the same grid as BenchmarkGridParallelism): "direct"
// re-executes the functional emulator inside every cell, "traced" records
// each benchmark's oracle stream once (internal/trace) and replays the
// compact encoding for every other scheme cell. The ratio of the two
// ns/op values is the grid-throughput multiple BENCH_trace.json records;
// results are bit-identical either way (golden-locked by
// TestGoldenTracedRunner).
func BenchmarkTraceReplay(b *testing.B) {
	for _, mode := range []string{"direct", "traced"} {
		b.Run(mode, func(b *testing.B) {
			opts := benchOpts()
			if mode == "traced" {
				// One runner for all iterations: the first grid records
				// once per benchmark, everything after replays — the
				// steady state a -traced dcabench/dcaserve process lives in.
				opts.Runner = &job.Traced{}
			}
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Run([]string{"modulo", "general", experiments.UBScheme}, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Substrate micro-benchmarks ---

// BenchmarkCoreCyclesPerSecond measures raw simulation throughput.
func BenchmarkCoreCyclesPerSecond(b *testing.B) {
	p, err := workload.Load("compress")
	if err != nil {
		b.Fatal(err)
	}
	st, _ := steer.New("general", p)
	m, err := core.New(config.Clustered(), p, st)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := m.Run(uint64(b.N)); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N), "instrs")
}

// BenchmarkEmulator measures the functional oracle alone.
func BenchmarkEmulator(b *testing.B) {
	p, err := workload.Load("gcc")
	if err != nil {
		b.Fatal(err)
	}
	m := emu.New(p)
	b.ResetTimer()
	if _, err := m.Run(uint64(b.N)); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCacheAccess measures the cache model's lookup cost.
func BenchmarkCacheAccess(b *testing.B) {
	h, err := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.L1D.Access(uint64(i*64), i%4 == 0)
	}
}
