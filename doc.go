// Package repro reproduces "Dynamic Cluster Assignment Mechanisms" by
// Ramon Canal, Joan Manuel Parcerisa and Antonio González (HPCA 2000): a
// cycle-level simulator of a clustered dynamically scheduled superscalar
// processor (the paper's two-cluster machine, generalized to N clusters
// with configurable ring/crossbar fabrics), the paper's eight dynamic
// steering schemes plus its static and FIFO-based comparators, SpecInt95
// workload analogs, and a benchmark harness regenerating every table and
// figure of the evaluation.
//
// See README.md for a tour, ARCHITECTURE.md for the package map and
// data-flow diagram, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-versus-measured
// results. The root package contains only the repository-level benchmark
// harness (bench_test.go); the implementation lives under internal/ and the
// runnable tools under cmd/ and examples/.
package repro
