// Steering comparison: run every cluster-assignment scheme of the paper on
// one SpecInt95 analog and print the resulting ranking — a one-benchmark
// version of the paper's Figures 3–16 story, built directly on the run
// layer (internal/job + internal/job/store).
//
// The grid is planned as canonical jobs and dispatched through a
// content-addressed result store on the job layer's worker pool, so the
// ranking arrives in roughly the time of the slowest single simulation —
// and with a cache directory, a re-run is served entirely from disk:
//
//	go run ./examples/steering_comparison go /tmp/dcacache   # simulates
//	go run ./examples/steering_comparison go /tmp/dcacache   # pure cache hits
//
// Usage: go run ./examples/steering_comparison [benchmark [cachedir]]
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/job"
	"repro/internal/job/store"
	"repro/internal/stats"
	"repro/internal/steer"
)

func main() {
	bench := "go"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}

	// Every registered scheme except naive (that is the base machine's own
	// rule), with the base pseudo-scheme first as the speed-up denominator.
	schemes := []string{job.BaseScheme}
	for _, scheme := range steer.Names() {
		if scheme != "naive" {
			schemes = append(schemes, scheme)
		}
	}

	jobs, err := job.GridSpec{
		Schemes:    schemes,
		Benchmarks: []string{bench},
		Warmup:     20_000,
		Measure:    150_000,
	}.Plan()
	if err != nil {
		log.Fatal(err)
	}

	// The result store: an in-memory LRU, optionally tiered over a disk
	// directory so identical cells are never simulated twice — not within
	// this run, and not across invocations.
	var st store.Store = store.NewMemory(0)
	if len(os.Args) > 2 {
		disk, err := store.NewDisk(os.Args[2])
		if err != nil {
			log.Fatal(err)
		}
		st = store.Tiered{Fast: st, Slow: disk}
	}
	cached := store.NewCached(st, nil)

	runs, err := job.RunAll(context.Background(), jobs, job.PoolOptions{Runner: cached})
	if err != nil {
		log.Fatal(err)
	}

	var base *stats.Run
	for i, j := range jobs {
		if j.Scheme == job.BaseScheme {
			base = runs[i]
		}
	}

	type row struct {
		scheme  string
		speedup float64
		comm    float64
	}
	var rows []row
	for i, j := range jobs {
		if j.Scheme == job.BaseScheme {
			continue
		}
		rows = append(rows, row{j.Scheme, stats.Speedup(runs[i], base), runs[i].CommPerInstr()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].speedup > rows[j].speedup })

	fmt.Printf("steering schemes on %q (speed-up over the conventional base, IPC %.2f)\n\n",
		bench, base.IPC())
	fmt.Printf("%-18s %9s %12s\n", "scheme", "speedup", "comm/instr")
	for _, r := range rows {
		fmt.Printf("%-18s %+8.1f%% %12.3f\n", r.scheme, r.speedup, r.comm)
	}
	m := cached.Metrics()
	fmt.Printf("\n%d cells: %d simulated, %d from the store (job digests, see internal/job)\n",
		len(jobs), m.Misses, m.Hits+m.Coalesced)
}
