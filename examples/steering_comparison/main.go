// Steering comparison: run every cluster-assignment scheme of the paper on
// one SpecInt95 analog and print the resulting ranking — a one-benchmark
// version of the paper's Figures 3–16 story.
//
// Usage: go run ./examples/steering_comparison [benchmark]
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/steer"
	"repro/internal/workload"
)

func main() {
	bench := "go"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	p, err := workload.Load(bench)
	if err != nil {
		log.Fatal(err)
	}

	baseMachine, err := core.New(config.Base(), p, core.NaiveSteerer{})
	if err != nil {
		log.Fatal(err)
	}
	base, err := baseMachine.RunWithWarmup(20_000, 150_000)
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		scheme  string
		speedup float64
		comm    float64
	}
	var rows []row
	for _, scheme := range steer.Names() {
		if scheme == "naive" {
			continue // that is the base machine's rule
		}
		// Each scheme needs a fresh program-derived policy and machine.
		policy, err := steer.New(scheme, p)
		if err != nil {
			log.Fatal(err)
		}
		cfg := config.Clustered()
		if scheme == "fifo" {
			cfg = config.FIFOClustered()
		}
		m, err := core.New(cfg, p, policy)
		if err != nil {
			log.Fatal(err)
		}
		r, err := m.RunWithWarmup(20_000, 150_000)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{scheme, stats.Speedup(r, base), r.CommPerInstr()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].speedup > rows[j].speedup })

	fmt.Printf("steering schemes on %q (speed-up over the conventional base, IPC %.2f)\n\n",
		bench, base.IPC())
	fmt.Printf("%-18s %9s %12s\n", "scheme", "speedup", "comm/instr")
	for _, r := range rows {
		fmt.Printf("%-18s %+8.1f%% %12.3f\n", r.scheme, r.speedup, r.comm)
	}
}
