// Steering comparison: run every cluster-assignment scheme of the paper on
// one SpecInt95 analog and print the resulting ranking — a one-benchmark
// version of the paper's Figures 3–16 story.
//
// The schemes run concurrently on the experiments package's worker pool
// (one grid cell per scheme), so the ranking arrives in roughly the time
// of the slowest single simulation.
//
// Usage: go run ./examples/steering_comparison [benchmark]
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/experiments"
	"repro/internal/steer"
)

func main() {
	bench := "go"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}

	// Every registered scheme except naive (that is the base machine's own
	// rule); the engine adds the base run implicitly.
	var schemes []string
	for _, scheme := range steer.Names() {
		if scheme != "naive" {
			schemes = append(schemes, scheme)
		}
	}

	opts := experiments.DefaultOptions()
	opts.Warmup, opts.Measure = 20_000, 150_000
	opts.Benchmarks = []string{bench}
	res, err := experiments.Run(schemes, opts)
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		scheme  string
		speedup float64
		comm    float64
	}
	var rows []row
	for _, scheme := range schemes {
		r := res.Get(scheme, bench)
		rows = append(rows, row{scheme, res.Speedup(scheme, bench), r.CommPerInstr()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].speedup > rows[j].speedup })

	fmt.Printf("steering schemes on %q (speed-up over the conventional base, IPC %.2f)\n\n",
		bench, res.Get(experiments.BaseScheme, bench).IPC())
	fmt.Printf("%-18s %9s %12s\n", "scheme", "speedup", "comm/instr")
	for _, r := range rows {
		fmt.Printf("%-18s %+8.1f%% %12.3f\n", r.scheme, r.speedup, r.comm)
	}
}
