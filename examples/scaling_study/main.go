// Scaling study: sweep cluster count × steering scheme and watch the
// balance/communication trade-off evolve past the paper's two clusters.
//
// The paper evaluates dynamic steering on a two-cluster machine, but its
// balance and slice mechanisms are defined over an arbitrary cluster
// count. This example runs a scheme grid on the 2-cluster paper machine
// and on the symmetric 4- and 8-cluster machines (config.ClusteredN,
// crossbar fabric), plus a 4-cluster ring variant, and prints IPC,
// speed-up over the conventional base, and communications per instruction
// for each point. Every grid reuses the experiments worker-pool engine, so
// the sweep saturates all cores.
//
// Usage: go run ./examples/scaling_study [benchmark ...]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/steer"
	"repro/internal/workload"
)

// schemes are the N-generalized policies worth comparing across cluster
// counts: the round-robin and random bounds, the operand-only baseline,
// and the paper's two strongest balance schemes.
var schemes = []string{"modulo", "random", "operand", "br-nonslice", "general"}

func main() {
	benches := workload.Names()
	if len(os.Args) > 1 {
		benches = os.Args[1:]
	}

	fmt.Printf("scaling study: %d scheme(s) x {2,4,8} clusters on %v\n\n", len(schemes), benches)
	table := stats.NewTable("IPC (G-mean speed-up % over 2-cluster base | comm/instr)",
		"scheme", "2 clusters", "4 clusters", "8 clusters")

	grids := map[int]*experiments.Result{}
	for _, n := range []int{2, 4, 8} {
		opts := experiments.DefaultOptions()
		opts.Benchmarks = benches
		opts.Clusters = n
		res, err := experiments.Run(schemes, opts)
		if err != nil {
			log.Fatal(err)
		}
		grids[n] = res
	}

	cell := func(res *experiments.Result, scheme string) string {
		total, _ := res.MeanComm(scheme)
		return fmt.Sprintf("%+6.1f%% | %.3f", res.MeanSpeedup(scheme), total)
	}
	for _, s := range schemes {
		table.AddRow(s, cell(grids[2], s), cell(grids[4], s), cell(grids[8], s))
	}
	fmt.Print(table.String())

	// One off-grid point: the 4-cluster ring, where copies between
	// opposite clusters take two hops. Compare against the crossbar to
	// price the fabric.
	fmt.Println("\n4-cluster fabric comparison (general steering, first benchmark):")
	bench := benches[0]
	crossbar := grids[4].Get("general", bench)
	ring, err := runRing(bench)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  crossbar: IPC %.2f  comm/instr %.3f\n", crossbar.IPC(), crossbar.CommPerInstr())
	fmt.Printf("  ring:     IPC %.2f  comm/instr %.3f\n", ring.IPC(), ring.CommPerInstr())

	fmt.Println("\nreading the table: modulo stays perfectly balanced at every N but its")
	fmt.Println("communication volume explodes with cluster count; operand-following")
	fmt.Println("collapses into one cluster once nothing forces it out; the balance")
	fmt.Println("schemes keep spreading work while holding copies per instruction far")
	fmt.Println("below modulo — the paper's trade-off, amplified by scale.")
}

// runRing simulates general steering on the 4-cluster ring machine with
// the default experiment budgets.
func runRing(bench string) (*stats.Run, error) {
	p, err := workload.Load(bench)
	if err != nil {
		return nil, err
	}
	cfg := config.ClusteredNRing(4)
	params := steer.DefaultParams()
	params.Clusters = cfg.NumClusters()
	st, err := steer.NewWithParams("general", p, params)
	if err != nil {
		return nil, err
	}
	m, err := core.New(cfg, p, st)
	if err != nil {
		return nil, err
	}
	opts := experiments.DefaultOptions()
	return m.RunWithWarmup(opts.Warmup, opts.Measure)
}
