// Quickstart: build a small program with the prog.Builder API, run it on
// the paper's two-cluster processor under general balance steering, and
// print the headline numbers next to the conventional baseline.
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/stats"
	"repro/internal/steer"
)

// buildSAXPYish constructs an endless integer loop with two independent
// computation chains — enough work that distributing it across the two
// clusters pays.
func buildSAXPYish() *prog.Program {
	b := prog.NewBuilder("quickstart")
	b.Word64("xs", 3, 1, 4, 1, 5, 9, 2, 6)
	b.Word64("ys", 2, 7, 1, 8, 2, 8, 1, 8)
	b.Space("out", 8*8)

	b.La(isa.R(1), "xs")
	b.La(isa.R(2), "ys")
	b.La(isa.R(3), "out")
	b.Li(isa.R(4), 0) // index
	b.Label("loop")
	b.Slli(isa.R(5), isa.R(4), 3)
	b.Add(isa.R(6), isa.R(1), isa.R(5))
	b.Add(isa.R(7), isa.R(2), isa.R(5))
	b.Ld(isa.R(8), isa.R(6), 0)
	b.Ld(isa.R(9), isa.R(7), 0)
	// chain 1: out[i] = 3*x + y
	b.Slli(isa.R(10), isa.R(8), 1)
	b.Add(isa.R(10), isa.R(10), isa.R(8))
	b.Add(isa.R(10), isa.R(10), isa.R(9))
	b.Add(isa.R(11), isa.R(3), isa.R(5))
	b.St(isa.R(10), isa.R(11), 0)
	// chain 2 (independent): running checksum of the inputs
	b.Xor(isa.R(12), isa.R(12), isa.R(8))
	b.Slli(isa.R(13), isa.R(9), 2)
	b.Add(isa.R(12), isa.R(12), isa.R(13))
	b.Addi(isa.R(4), isa.R(4), 1)
	b.Andi(isa.R(4), isa.R(4), 7)
	b.Jmp("loop")
	return b.MustBuild()
}

func main() {
	p := buildSAXPYish()

	// The conventional machine: integer work cannot use the FP cluster.
	baseMachine, err := core.New(config.Base(), p, core.NaiveSteerer{})
	if err != nil {
		log.Fatal(err)
	}
	base, err := baseMachine.RunWithWarmup(5_000, 100_000)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's machine with its best steering scheme.
	policy, err := steer.New("general", p)
	if err != nil {
		log.Fatal(err)
	}
	clustered, err := core.New(config.Clustered(), p, policy)
	if err != nil {
		log.Fatal(err)
	}
	run, err := clustered.RunWithWarmup(5_000, 100_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("base machine:      IPC %.2f\n", base.IPC())
	fmt.Printf("general steering:  IPC %.2f  (%+.1f%%)\n", run.IPC(), stats.Speedup(run, base))
	fmt.Printf("communications:    %.3f per instruction (%.0f%% critical)\n",
		run.CommPerInstr(), 100*run.CriticalCommPerInstr()/max(run.CommPerInstr(), 1e-9))
	fmt.Printf("cluster split:     %d int / %d fp\n", run.Steered[0], run.Steered[1])
	fmt.Printf("replicated regs:   %.1f per cycle\n", run.ReplicatedRegsAvg)
}
