// Custom program: assemble the paper's running example (Figure 2 — the
// array-divide loop whose register dependence graph the paper uses to
// define LdSt and Br slices), execute it functionally, show how the
// steering hardware learns its slices at run time, and time it on the
// clustered machine.
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/steer"
)

const figure2 = `
; for (i=0;i<N;i++) { if (C[i]!=0) A[i]=B[i]/C[i]; else A[i]=0; }
.data
A: .word 0, 0, 0, 0
B: .word 8, 12, 20, 36
C: .word 2, 0, 5, 6
.text
     addi r9, r0, 32    ; N*8
start:
     addi r1, r0, 0     ; i*8
for: lui  r2, 1
     ori  r2, r2, 32    ; &B
     add  r2, r2, r1
     ld   r3, 0(r2)     ; B[i]
     lui  r4, 1
     ori  r4, r4, 64    ; &C
     add  r4, r4, r1
     ld   r5, 0(r4)     ; C[i]
     beq  r5, r0, l1
     div  r7, r3, r5
     j    l2
l1:  addi r7, r0, 0
l2:  lui  r8, 1         ; &A
     add  r8, r8, r1
     st   r7, 0(r8)
     addi r1, r1, 8
     bne  r1, r9, for
     j    start         ; repeat forever for the timing run
`

func main() {
	p, err := asm.Assemble("figure2", figure2)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Functional execution: verify the loop computes A = B/C.
	m := emu.New(p)
	if _, err := m.Run(200); err != nil {
		log.Fatal(err)
	}
	a := p.Symbols["A"]
	fmt.Print("A after one pass: ")
	for i := 0; i < 4; i++ {
		fmt.Printf("%d ", int64(m.Mem.Read(a+uint64(i*8), 8)))
	}
	fmt.Println("(expected 4 0 4 6)")

	// 2. Slice learning: run the LdSt and Br slice trackers over the
	// decode stream and print each instruction's membership — compare
	// with the shaded nodes of the paper's Figure 2.
	ldst := steer.NewSlice(steer.LdStSlice)
	br := steer.NewSlice(steer.BrSlice)
	trainer := emu.New(p)
	for i := 0; i < 2000; i++ {
		st, err := trainer.Step()
		if err != nil {
			log.Fatal(err)
		}
		info := &core.SteerInfo{PC: st.PC, Inst: st.Inst, Forced: core.AnyCluster}
		ldst.Steer(info)
		br.Steer(info)
	}
	fmt.Println("\nlearned slice membership (cf. paper Figure 2):")
	fmt.Printf("%4s  %-22s %-6s %-6s\n", "pc", "instruction", "LdSt", "Br")
	for pc, in := range p.Text {
		mark := func(b bool) string {
			if b {
				return "  x"
			}
			return ""
		}
		fmt.Printf("%4d  %-22s %-6s %-6s\n", pc, in.String(), mark(ldst.InSlice(pc)), mark(br.InSlice(pc)))
	}

	// 3. Timing: the same program on the clustered machine.
	policy, err := steer.New("ldst-slice", p)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := core.New(config.Clustered(), p, policy)
	if err != nil {
		log.Fatal(err)
	}
	r, err := sim.RunWithWarmup(2_000, 50_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nldst-slice steering on the clustered machine: IPC %.2f, comm/instr %.3f\n",
		r.IPC(), r.CommPerInstr())
}
