// Balance study: visualize the workload-balance / communication trade-off
// at the heart of the paper. For three schemes — modulo (perfect balance,
// pathological communication), ldst-slice (good locality, poor balance)
// and general (the proposed compromise) — print the ready-difference
// histogram the paper plots in Figures 6, 9 and 12, as ASCII bars.
//
// Usage: go run ./examples/balance_study [benchmark]
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/steer"
	"repro/internal/workload"
)

func main() {
	bench := "m88ksim"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	schemes := []string{"modulo", "ldst-slice", "general"}

	for _, scheme := range schemes {
		p, err := workload.Load(bench)
		if err != nil {
			log.Fatal(err)
		}
		policy, err := steer.New(scheme, p)
		if err != nil {
			log.Fatal(err)
		}
		m, err := core.New(config.Clustered(), p, policy)
		if err != nil {
			log.Fatal(err)
		}
		r, err := m.RunWithWarmup(20_000, 150_000)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("\n%s on %q — IPC %.2f, comm/instr %.3f\n", scheme, bench, r.IPC(), r.CommPerInstr())
		fmt.Println("ready(FP) - ready(INT) distribution (% of cycles):")
		for d := -stats.BalanceRange; d <= stats.BalanceRange; d++ {
			pct := r.Balance.Percent(d)
			fmt.Printf("%+4d %5.1f%% %s\n", d, pct, strings.Repeat("#", int(pct)))
		}
	}
	fmt.Println("\nmodulo centers the distribution but pays in copies; slice steering")
	fmt.Println("skews toward one cluster; general balance holds the center at a")
	fmt.Println("fraction of modulo's communication volume — the paper's Figure 12 story.")
}
