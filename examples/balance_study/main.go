// Balance study: visualize the workload-balance / communication trade-off
// at the heart of the paper. For three schemes — modulo (perfect balance,
// pathological communication), ldst-slice (good locality, poor balance)
// and general (the proposed compromise) — print the ready-difference
// histogram the paper plots in Figures 6, 9 and 12, as ASCII bars.
//
// The three simulations run concurrently on the experiments engine's
// worker pool; the histograms print in scheme order regardless of which
// simulation finishes first.
//
// Usage: go run ./examples/balance_study [benchmark]
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	bench := "m88ksim"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	schemes := []string{"modulo", "ldst-slice", "general"}

	opts := experiments.DefaultOptions()
	opts.Warmup, opts.Measure = 20_000, 150_000
	opts.Benchmarks = []string{bench}
	res, err := experiments.Run(schemes, opts)
	if err != nil {
		log.Fatal(err)
	}

	// The engine always runs the base machine too; use it as the yardstick.
	base := res.Get(experiments.BaseScheme, bench)
	fmt.Printf("conventional base on %q — IPC %.2f\n", bench, base.IPC())

	for _, scheme := range schemes {
		r := res.Get(scheme, bench)
		fmt.Printf("\n%s on %q — IPC %.2f (%+.1f%% over base), comm/instr %.3f\n",
			scheme, bench, r.IPC(), res.Speedup(scheme, bench), r.CommPerInstr())
		fmt.Println("ready(FP) - ready(INT) distribution (% of cycles):")
		for d := -stats.BalanceRange; d <= stats.BalanceRange; d++ {
			pct := r.Balance.Percent(d)
			fmt.Printf("%+4d %5.1f%% %s\n", d, pct, strings.Repeat("#", int(pct)))
		}
	}
	fmt.Println("\nmodulo centers the distribution but pays in copies; slice steering")
	fmt.Println("skews toward one cluster; general balance holds the center at a")
	fmt.Println("fraction of modulo's communication volume — the paper's Figure 12 story.")
}
